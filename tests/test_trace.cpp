// Tests for the Section-2 trace synthesizer: the synthesized statistics
// must land on the paper's published Table 1 / Figure 1 numbers.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "trace/memory_trace.hpp"

namespace dodo::trace {
namespace {

TraceConfig short_cfg() {
  TraceConfig cfg;
  cfg.duration = 4LL * 24 * 3600 * kSecond;  // 4 days is plenty for stats
  return cfg;
}

TEST(Trace, PaperStatsAreTable1Verbatim) {
  const auto s128 = paper_stats(HostClass::k128);
  EXPECT_EQ(s128.total_kb, 128 * 1024);
  EXPECT_EQ(s128.kernel_mean, 25512);
  EXPECT_EQ(s128.avail_mean, 84761);
  // available == total - kernel - fcache - proc in expectation, which is
  // exactly how Table 1's columns relate.
  for (const auto cls :
       {HostClass::k32, HostClass::k64, HostClass::k128, HostClass::k256}) {
    const auto st = paper_stats(cls);
    EXPECT_NEAR(st.avail_mean,
                static_cast<double>(st.total_kb) - st.kernel_mean -
                    st.fcache_mean - st.proc_mean,
                0.5);
  }
}

class TraceClassParam : public ::testing::TestWithParam<HostClass> {};

TEST_P(TraceClassParam, SynthesizedStatsMatchTable1) {
  const HostClass cls = GetParam();
  const auto st = paper_stats(cls);
  const Table1Row row = summarize_class(cls, 12, short_cfg(), 99);
  // Means within 10% (available gets its tolerance from the components).
  EXPECT_NEAR(row.kernel.mean(), st.kernel_mean, 0.10 * st.kernel_mean);
  EXPECT_NEAR(row.fcache.mean(), st.fcache_mean, 0.15 * st.fcache_mean);
  // Process memory is inflated slightly by surges; allow more headroom.
  EXPECT_NEAR(row.proc.mean(), st.proc_mean, 0.35 * st.proc_mean + 2048);
  EXPECT_NEAR(row.avail.mean(), st.avail_mean, 0.12 * st.avail_mean);
  // Standard deviations at least in the right regime (within 2.5x).
  EXPECT_GT(row.kernel.stddev(), st.kernel_sd / 2.5);
  EXPECT_LT(row.kernel.stddev(), st.kernel_sd * 2.5);
}

INSTANTIATE_TEST_SUITE_P(AllClasses, TraceClassParam,
                         ::testing::Values(HostClass::k32, HostClass::k64,
                                           HostClass::k128, HostClass::k256));

TEST(Trace, Deterministic) {
  const auto a = synthesize_host(HostClass::k128, short_cfg(), 5);
  const auto b = synthesize_host(HostClass::k128, short_cfg(), 5);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].proc_kb, b.samples[i].proc_kb);
    EXPECT_EQ(a.samples[i].idle, b.samples[i].idle);
  }
  const auto c = synthesize_host(HostClass::k128, short_cfg(), 6);
  EXPECT_NE(a.samples[100].proc_kb, c.samples[100].proc_kb);
}

TEST(Trace, HostsHaveDipsButAreMostlyAvailable) {
  const auto tr = synthesize_host(HostClass::k128, short_cfg(), 7);
  // Figure 2: "while there are dips ... large fractions of a workstation's
  // memory is available most of the time."
  EXPECT_GT(tr.dips_below(0.25), 0);
  int high = 0;
  for (const auto& s : tr.samples) {
    if (s.available_kb(tr.total_kb) >
        tr.total_kb / 2) {
      ++high;
    }
  }
  EXPECT_GT(static_cast<double>(high) /
                static_cast<double>(tr.samples.size()),
            0.5);
}

TEST(Trace, ClusterAveragesMatchFigure1) {
  const auto a = cluster_availability(cluster_a_hosts(), short_cfg(), 3);
  const auto b = cluster_availability(cluster_b_hosts(), short_cfg(), 4);
  // clusterA: 3549 MB all hosts / 2747 MB idle hosts; clusterB: 852 / 742.
  EXPECT_NEAR(a.mean_all(), 3549, 0.15 * 3549);
  EXPECT_NEAR(b.mean_all(), 852, 0.15 * 852);
  EXPECT_LT(a.mean_idle(), a.mean_all());
  EXPECT_LT(b.mean_idle(), b.mean_all());
  EXPECT_GT(a.mean_idle(), 0.6 * a.mean_all());
  EXPECT_GT(b.mean_idle(), 0.6 * b.mean_all());
}

TEST(Trace, TsvRoundTripIsExact) {
  TraceConfig cfg = short_cfg();
  cfg.duration = 12LL * 3600 * kSecond;  // keep the text small
  const auto tr = synthesize_host(HostClass::k64, cfg, 31);
  ASSERT_FALSE(tr.samples.empty());

  HostTrace back;
  std::string err;
  ASSERT_TRUE(trace_from_tsv(trace_to_tsv(tr), back, &err)) << err;
  EXPECT_EQ(back.cls, tr.cls);
  EXPECT_EQ(back.total_kb, tr.total_kb);
  ASSERT_EQ(back.samples.size(), tr.samples.size());
  for (std::size_t i = 0; i < tr.samples.size(); ++i) {
    EXPECT_EQ(back.samples[i].t, tr.samples[i].t) << i;
    EXPECT_EQ(back.samples[i].kernel_kb, tr.samples[i].kernel_kb) << i;
    EXPECT_EQ(back.samples[i].fcache_kb, tr.samples[i].fcache_kb) << i;
    EXPECT_EQ(back.samples[i].proc_kb, tr.samples[i].proc_kb) << i;
    EXPECT_EQ(back.samples[i].idle, tr.samples[i].idle) << i;
  }
  // Second serialization is byte-identical: the format is canonical.
  EXPECT_EQ(trace_to_tsv(back), trace_to_tsv(tr));
}

TEST(Trace, TsvAcceptsCrLfAndBlankLines) {
  const std::string text =
      "# dodo trace v1 1 65536\r\n"
      "\r\n"
      "0\t100\t200\t300\t1\r\n"
      "300000000000\t110\t210\t310\t0\r\n";
  HostTrace tr;
  std::string err;
  ASSERT_TRUE(trace_from_tsv(text, tr, &err)) << err;
  EXPECT_EQ(tr.cls, HostClass::k64);
  ASSERT_EQ(tr.samples.size(), 2u);
  EXPECT_TRUE(tr.samples[0].idle);
  EXPECT_FALSE(tr.samples[1].idle);
}

TEST(Trace, TsvRejectsMalformedInput) {
  const struct {
    const char* text;
    const char* why;
  } cases[] = {
      {"", "empty input"},
      {"0\t1\t2\t3\t1\n", "missing header"},
      {"# dodo trace v2 1 65536\n", "unsupported version"},
      {"# dodo trace v1 9 65536\n", "unknown host class"},
      {"# dodo trace v1 1 0\n", "non-positive total"},
      {"# dodo trace v1 1 65536 junk\n", "trailing header tokens"},
      {"# dodo trace v1 1 65536\n0\t1\t2\n", "short sample row"},
      {"# dodo trace v1 1 65536\n0\t1\t2\tx\t1\n", "non-numeric field"},
      {"# dodo trace v1 1 65536\n0\t1\t2\t3\t1\textra\n", "trailing tokens"},
      {"# dodo trace v1 1 65536\n-5\t1\t2\t3\t1\n", "negative timestamp"},
      {"# dodo trace v1 1 65536\n0\t-1\t2\t3\t1\n", "negative size"},
      {"# dodo trace v1 1 65536\n0\t1\t2\t3\t7\n", "bad idle flag"},
      {"# dodo trace v1 1 65536\n5\t1\t2\t3\t1\n5\t1\t2\t3\t0\n",
       "non-monotonic timestamps"},
  };
  for (const auto& c : cases) {
    HostTrace tr;
    std::string err;
    EXPECT_FALSE(trace_from_tsv(c.text, tr, &err)) << c.why;
    EXPECT_FALSE(err.empty()) << c.why;
  }
}

TEST(Trace, ActivityAdapterTracksTrace) {
  auto tr = synthesize_host(HostClass::k64, short_cfg(), 9);
  const auto samples = tr.samples;  // copy: tr is moved into the adapter
  const Bytes64 total = tr.total_kb * 1024;
  TraceActivity act(std::move(tr));
  EXPECT_EQ(act.total_memory(), total);
  // Spot-check several sample points.
  for (std::size_t i = 0; i < samples.size(); i += 97) {
    const SimTime t = samples[i].t;
    EXPECT_EQ(act.console_active(t), !samples[i].idle) << i;
    EXPECT_GT(act.active_memory(t), 0);
    EXPECT_LE(act.active_memory(t), total);
  }
}

TEST(Trace, FlashCrowdCollapsesAvailabilityInOneWindow) {
  FlashCrowdConfig cfg;
  cfg.seed = 7;
  const auto hosts = std::vector<HostClass>(8, HostClass::k128);
  const auto traces = synthesize_flash_crowd(hosts, cfg);
  ASSERT_EQ(traces.size(), hosts.size());

  for (std::size_t h = 0; h < traces.size(); ++h) {
    const HostTrace& tr = traces[h];
    ASSERT_FALSE(tr.samples.empty()) << h;
    // Every sample before the crowd is idle; the first busy sample lands
    // inside the arrival window (one sample of quantization slack).
    SimTime first_busy = -1;
    SimTime last_busy = -1;
    for (const Sample& s : tr.samples) {
      if (s.idle) continue;
      if (first_busy < 0) first_busy = s.t;
      last_busy = s.t;
    }
    ASSERT_GE(first_busy, 0) << "host " << h << " never saw its owner";
    // The console goes busy only after the memory ramp.
    EXPECT_GE(first_busy, cfg.crowd_at + cfg.ramp_len) << h;
    EXPECT_LT(first_busy, cfg.crowd_at + cfg.arrival_spread + cfg.ramp_len +
                              cfg.sample_interval)
        << h;
    // The owner leaves again: busy spans roughly busy_len, then the tail of
    // the trace is idle once more.
    EXPECT_LT(last_busy, cfg.crowd_at + cfg.arrival_spread + cfg.ramp_len +
                             cfg.busy_len + cfg.sample_interval)
        << h;
    EXPECT_TRUE(tr.samples.back().idle) << h;

    // Availability economics: the crowd claims most of what was free. Compare
    // the mean available during the busy window against the pre-crowd mean,
    // and check the ramp shows graded pressure — at least one sample that is
    // still console-idle yet has lost a big slice of availability.
    double before = 0.0, during = 0.0;
    int nb = 0, nd = 0;
    bool graded = false;
    for (const Sample& s : tr.samples) {
      const auto avail = static_cast<double>(s.available_kb(tr.total_kb));
      if (s.t < cfg.crowd_at) {
        before += avail;
        ++nb;
      } else if (!s.idle) {
        during += avail;
        ++nd;
      }
    }
    ASSERT_GT(nb, 0);
    ASSERT_GT(nd, 0);
    before /= nb;
    during /= nd;
    EXPECT_LT(during, 0.35 * before)
        << "host " << h << ": crowd left " << during << " of " << before;
    for (const Sample& s : tr.samples) {
      if (s.idle && s.t >= cfg.crowd_at && s.t < first_busy &&
          static_cast<double>(s.available_kb(tr.total_kb)) < 0.6 * before) {
        graded = true;
      }
    }
    EXPECT_TRUE(graded) << "host " << h << " jumped straight to busy";
  }

  // Deterministic in (seed, host); TSV round-trips like any other trace.
  const auto again = synthesize_flash_crowd(hosts, cfg);
  ASSERT_EQ(again.size(), traces.size());
  for (std::size_t h = 0; h < traces.size(); ++h) {
    ASSERT_EQ(again[h].samples.size(), traces[h].samples.size());
    for (std::size_t i = 0; i < traces[h].samples.size(); ++i) {
      EXPECT_EQ(again[h].samples[i].proc_kb, traces[h].samples[i].proc_kb);
      EXPECT_EQ(again[h].samples[i].idle, traces[h].samples[i].idle);
    }
  }
  HostTrace rt;
  std::string err;
  ASSERT_TRUE(trace_from_tsv(trace_to_tsv(traces[0]), rt, &err)) << err;
  EXPECT_EQ(rt.samples.size(), traces[0].samples.size());
}

}  // namespace
}  // namespace dodo::trace
