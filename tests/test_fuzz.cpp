// Simulation-fuzzer suite (DESIGN.md §8).
//
// Three layers:
//   1. Component checks: the schedule text format round-trips and rejects
//      malformed input; the delivery permuter and schedule generator are
//      pure functions of their seed.
//   2. Fixed-seed smoke corpus: every corpus seed runs a randomized
//      workload+fault schedule with all oracles armed and must come back
//      green. This is the tier-1 face of the fuzzer; soak-scale scans live
//      behind `ctest -C fuzz -L fuzz`.
//   3. Bug-catch acceptance: with the PR-1 imd reply-cache clear-all bug
//      deliberately re-introduced (RunOptions::buggy_imd_reply_cache), a
//      small seed scan must find a leak violation, and the shrinker must
//      reduce it to a handful of events that stay green on the fixed code.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/generator.hpp"
#include "fuzz/permute.hpp"
#include "fuzz/runner.hpp"
#include "fuzz/schedule.hpp"
#include "fuzz/shrink.hpp"

namespace dodo {
namespace {

// -- schedule format ---------------------------------------------------------

TEST(FuzzSchedule, SerializeParseRoundTripsGeneratedSchedules) {
  for (std::uint64_t seed : {1ULL, 5ULL, 42ULL, 80ULL, 1234567ULL}) {
    const fuzz::Schedule s = fuzz::generate_schedule(seed);
    fuzz::Schedule back;
    std::string err;
    ASSERT_TRUE(fuzz::Schedule::parse(s.serialize(), back, &err))
        << "seed " << seed << ": " << err;
    EXPECT_EQ(s.serialize(), back.serialize()) << "seed " << seed;
  }
}

TEST(FuzzSchedule, ParsesPatternsAboveSignedRange) {
  // Patterns are raw 64-bit rng draws; half exceed INT64_MAX. A signed
  // parse rejected exactly these lines once — keep the explicit case.
  const std::string text =
      "# dodo fuzz schedule v1\n"
      "slots 4\n"
      "op push 2 14783476305918772050 0\n";
  fuzz::Schedule s;
  std::string err;
  ASSERT_TRUE(fuzz::Schedule::parse(text, s, &err)) << err;
  ASSERT_EQ(s.ops.size(), 1u);
  EXPECT_EQ(s.ops[0].pattern, 14783476305918772050ULL);
}

TEST(FuzzSchedule, AcceptsCrLfAndComments) {
  const std::string text =
      "# dodo fuzz schedule v1\r\n"
      "# a hand-written comment\r\n"
      "hosts 2\r\n"
      "\r\n"
      "op open 0 7 0\r\n";
  fuzz::Schedule s;
  std::string err;
  ASSERT_TRUE(fuzz::Schedule::parse(text, s, &err)) << err;
  EXPECT_EQ(s.hosts, 2);
  ASSERT_EQ(s.ops.size(), 1u);
  EXPECT_EQ(s.ops[0].kind, fuzz::OpKind::kOpen);
}

TEST(FuzzSchedule, RejectsMalformedInput) {
  const struct {
    const char* text;
    const char* why;
  } cases[] = {
      {"hosts 2\n", "missing header"},
      {"# dodo fuzz schedule v1\nwibble 3\n", "unknown key"},
      {"# dodo fuzz schedule v1\nop frobnicate 0 1 0\n", "unknown op kind"},
      {"# dodo fuzz schedule v1\nop open 0 1\n", "missing op field"},
      {"# dodo fuzz schedule v1\nop open 0 1 0 junk\n", "trailing tokens"},
      {"# dodo fuzz schedule v1\nop open -1 1 0\n", "negative slot"},
      {"# dodo fuzz schedule v1\nop sleep 0 1 -5\n", "negative duration"},
      {"# dodo fuzz schedule v1\nslots 2\nop open 5 1 0\n",
       "slot out of range"},
      {"# dodo fuzz schedule v1\nhosts 0\n", "zero hosts"},
      {"# dodo fuzz schedule v1\npool -4\n", "negative pool"},
      {"# dodo fuzz schedule v1\nfault loss-burst-begin 5 -1 0 0\n",
       "missing fault field"},
      {"# dodo fuzz schedule v1\nfault flood 5 -1 0 0 0.5\n",
       "unknown fault kind"},
      {"# dodo fuzz schedule v1\nfault loss-burst-begin -5 -1 0 0 0.5\n",
       "negative fault time"},
  };
  for (const auto& c : cases) {
    fuzz::Schedule s;
    std::string err;
    EXPECT_FALSE(fuzz::Schedule::parse(c.text, s, &err)) << c.why;
    EXPECT_FALSE(err.empty()) << c.why;
  }
}

// -- delivery permuter -------------------------------------------------------

TEST(FuzzPermute, IdentityWithZeroParams) {
  const auto out = fuzz::permute_deliveries(16, 99, {});
  ASSERT_EQ(out.size(), 16u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i);
}

TEST(FuzzPermute, DeterministicPerSeed) {
  fuzz::PermuteParams p{0.2, 0.2, 3};
  EXPECT_EQ(fuzz::permute_deliveries(64, 7, p),
            fuzz::permute_deliveries(64, 7, p));
  EXPECT_NE(fuzz::permute_deliveries(64, 7, p),
            fuzz::permute_deliveries(64, 8, p));
}

TEST(FuzzPermute, ReorderAloneIsAPermutationWithBoundedDisplacement) {
  const std::size_t n = 128, window = 4;
  const auto out = fuzz::permute_deliveries(n, 3, {0.0, 0.0, window});
  ASSERT_EQ(out.size(), n);
  std::vector<int> seen(n, 0);
  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::size_t idx = out[pos];
    ++seen[idx];
    const std::size_t displacement = pos > idx ? pos - idx : idx - pos;
    EXPECT_LE(displacement, window) << "index " << idx << " at " << pos;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](int c) { return c == 1; }));
}

TEST(FuzzPermute, DropsAndDuplicatesChangeMultiplicity) {
  const std::size_t n = 256;
  const auto dropped = fuzz::permute_deliveries(n, 11, {0.3, 0.0, 0});
  EXPECT_LT(dropped.size(), n);
  const auto dupped = fuzz::permute_deliveries(n, 11, {0.0, 0.3, 0});
  EXPECT_GT(dupped.size(), n);
  // Duplicates are adjacent re-deliveries of the same index.
  bool found_adjacent_dup = false;
  for (std::size_t i = 0; i + 1 < dupped.size(); ++i) {
    if (dupped[i] == dupped[i + 1]) found_adjacent_dup = true;
  }
  EXPECT_TRUE(found_adjacent_dup);
}

// -- generator ---------------------------------------------------------------

TEST(FuzzGenerator, PureFunctionOfSeed) {
  EXPECT_EQ(fuzz::generate_schedule(17).serialize(),
            fuzz::generate_schedule(17).serialize());
  EXPECT_NE(fuzz::generate_schedule(17).serialize(),
            fuzz::generate_schedule(18).serialize());
}

TEST(FuzzGenerator, SchedulesAreWellFormed) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const fuzz::Schedule s = fuzz::generate_schedule(seed);
    EXPECT_GE(s.hosts, 1) << seed;
    EXPECT_GE(s.slots, 1) << seed;
    EXPECT_GE(s.pool, static_cast<Bytes64>(s.slots) * s.region) << seed;
    for (const fuzz::WorkOp& op : s.ops) {
      EXPECT_GE(op.slot, 0) << seed;
      EXPECT_LT(op.slot, s.slots) << seed;
    }
    // Every window fault is paired: the injector restores what it breaks,
    // so the runner's quiesce phase starts from a healed network.
    using fault::FaultKind;
    auto count = [&](FaultKind k) {
      return std::count_if(s.faults.begin(), s.faults.end(),
                           [&](const auto& ev) { return ev.kind == k; });
    };
    EXPECT_EQ(count(FaultKind::kLossBurstBegin),
              count(FaultKind::kLossBurstEnd)) << seed;
    EXPECT_EQ(count(FaultKind::kPartitionBegin),
              count(FaultKind::kPartitionEnd)) << seed;
    EXPECT_EQ(count(FaultKind::kImdCrash),
              count(FaultKind::kImdRestart)) << seed;
    // Urgent pressure (level 2) holds the host out of service exactly like
    // an evict, and the generator releases both with a recruit.
    const auto urgent_holds = std::count_if(
        s.faults.begin(), s.faults.end(), [](const auto& ev) {
          return ev.kind == FaultKind::kHostPressure && ev.a == 2;
        });
    EXPECT_EQ(count(FaultKind::kHostEvict) + urgent_holds,
              count(FaultKind::kHostRecruit)) << seed;
    EXPECT_EQ(count(FaultKind::kCmdBlackoutBegin),
              count(FaultKind::kCmdBlackoutEnd)) << seed;
  }
}

// -- fixed-seed smoke corpus -------------------------------------------------

// 30 seeds ≥ the 25 the roadmap asks for. Runs are single-digit
// milliseconds each (simulated time is free); the whole corpus is cheaper
// than one real-network test.
constexpr std::uint64_t kSmokeCorpusBase = 1;
constexpr std::uint64_t kSmokeCorpusCount = 30;

TEST(FuzzSmoke, FixedSeedCorpusIsGreen) {
  std::uint64_t total_pushes = 0, total_reads = 0, total_drops = 0;
  for (std::uint64_t seed = kSmokeCorpusBase;
       seed < kSmokeCorpusBase + kSmokeCorpusCount; ++seed) {
    const fuzz::Schedule s = fuzz::generate_schedule(seed);
    const fuzz::RunResult r = fuzz::run_schedule(s);
    EXPECT_TRUE(r.completed) << "seed " << seed << " did not quiesce";
    EXPECT_TRUE(r.violation.empty())
        << "seed " << seed << ": " << r.violation << "\nreplay with:"
        << " fuzz_repro --seed " << seed;
    total_pushes += r.client_metrics.remote_pushes;
    total_reads += r.client_metrics.remote_reads;
    total_drops += r.client_metrics.descriptors_dropped;
  }
  // The corpus must actually exercise remote memory under fire, not no-op
  // through closed descriptors.
  EXPECT_GT(total_pushes, 50u);
  EXPECT_GT(total_reads, 25u);
  EXPECT_GT(total_drops, 0u);
}

// -- bug-catch acceptance ----------------------------------------------------

// Scan with the PR-1 eviction bug re-introduced until a seed trips the
// region-leak oracle. Keep the scan small: catch rate is a few percent of
// seeds, and the fixed corpus window below is known to contain hits.
std::uint64_t find_leaking_seed(std::uint64_t lo, std::uint64_t hi) {
  fuzz::RunOptions buggy;
  buggy.buggy_imd_reply_cache = true;
  for (std::uint64_t seed = lo; seed <= hi; ++seed) {
    const auto r = fuzz::run_schedule(fuzz::generate_schedule(seed), buggy);
    if (r.completed && r.violation.rfind("region-leak", 0) == 0) return seed;
  }
  return 0;
}

TEST(FuzzBugCatch, ReintroducedReplyCacheBugIsCaughtAndShrunk) {
  const std::uint64_t seed = find_leaking_seed(1, 40);
  ASSERT_NE(seed, 0u)
      << "no seed in [1,40] tripped the region-leak oracle with the "
         "clear-all reply-cache bug re-introduced";

  fuzz::RunOptions buggy;
  buggy.buggy_imd_reply_cache = true;
  const fuzz::Schedule failing = fuzz::generate_schedule(seed);

  // Shrink against the specific oracle so minimization cannot wander onto
  // a different failure mode.
  const auto still_leaks = [&](const fuzz::Schedule& cand) {
    const auto r = fuzz::run_schedule(cand, buggy);
    return r.completed && r.violation.rfind("region-leak", 0) == 0;
  };
  const fuzz::ShrinkResult sr = fuzz::shrink_schedule(failing, still_leaks);
  EXPECT_LE(sr.runs, 400u);
  EXPECT_LT(sr.minimal.size(), failing.size());
  EXPECT_LE(sr.minimal.size(), 20u)
      << "minimal schedule still has " << sr.minimal.size() << " events:\n"
      << sr.minimal.serialize();

  // The minimal schedule is a true witness: red with the bug, green
  // without it.
  const auto red = fuzz::run_schedule(sr.minimal, buggy);
  EXPECT_TRUE(red.completed);
  EXPECT_EQ(red.violation.rfind("region-leak", 0), 0u) << red.violation;
  const auto green = fuzz::run_schedule(sr.minimal);
  EXPECT_TRUE(green.ok()) << green.violation;

  // And the promotion path emits a parseable regression body.
  const std::string body =
      fuzz::to_regression_test(sr.minimal, "ShrunkReplyCacheLeak",
                               "region-leak");
  EXPECT_NE(body.find("TEST(FuzzRegression, ShrunkReplyCacheLeak)"),
            std::string::npos);
  EXPECT_NE(body.find("# dodo fuzz schedule v1"), std::string::npos);
}

// The shrunk witness double-checks round-trip fidelity: replaying its own
// serialization reproduces the identical verdicts.
TEST(FuzzBugCatch, ShrunkWitnessSurvivesSerialization) {
  const std::uint64_t seed = find_leaking_seed(1, 40);
  ASSERT_NE(seed, 0u);
  fuzz::RunOptions buggy;
  buggy.buggy_imd_reply_cache = true;
  const auto still_leaks = [&](const fuzz::Schedule& cand) {
    const auto r = fuzz::run_schedule(cand, buggy);
    return r.completed && r.violation.rfind("region-leak", 0) == 0;
  };
  const fuzz::ShrinkResult sr =
      fuzz::shrink_schedule(fuzz::generate_schedule(seed), still_leaks);
  fuzz::Schedule replayed;
  std::string err;
  ASSERT_TRUE(fuzz::Schedule::parse(sr.minimal.serialize(), replayed, &err))
      << err;
  EXPECT_EQ(fuzz::run_schedule(replayed, buggy).violation,
            fuzz::run_schedule(sr.minimal, buggy).violation);
  EXPECT_TRUE(fuzz::run_schedule(replayed).ok());
}

}  // namespace
}  // namespace dodo
