// Tests for common utilities: units, status, RNG, stats.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/units.hpp"

namespace dodo {
namespace {

TEST(Units, ByteLiterals) {
  EXPECT_EQ(1_KiB, 1024);
  EXPECT_EQ(1_MiB, 1024 * 1024);
  EXPECT_EQ(2_GiB, 2LL * 1024 * 1024 * 1024);
}

TEST(Units, TimeLiterals) {
  EXPECT_EQ(1_us, 1000);
  EXPECT_EQ(1_ms, 1000 * 1000);
  EXPECT_EQ(1_s, 1000LL * 1000 * 1000);
  EXPECT_EQ(millis(1.5), 1500000);
  EXPECT_DOUBLE_EQ(to_seconds(1500_ms), 1.5);
}

TEST(Units, TransferTime) {
  // 1 MiB at 1 MiB/s is one second (+1ns rounding guard).
  EXPECT_NEAR(static_cast<double>(transfer_time(1_MiB, 1024.0 * 1024.0)),
              static_cast<double>(1_s), 10.0);
  EXPECT_EQ(transfer_time(0, 100.0), 0);
  EXPECT_EQ(transfer_time(100, 0.0), 0);
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), Err::kOk);
}

TEST(Status, CarriesCodeAndMessage) {
  Status s(Err::kNoMem, "pool exhausted");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), Err::kNoMem);
  EXPECT_EQ(s.to_string(), "NOMEM: pool exhausted");
}

TEST(Status, AllCodesHaveNames) {
  for (int i = 0; i <= static_cast<int>(Err::kShutdown); ++i) {
    EXPECT_NE(err_name(static_cast<Err>(i)), "UNKNOWN");
  }
}

TEST(Errno, ThreadLocalSideChannel) {
  dodo_errno() = kDodoENOMEM;
  EXPECT_EQ(dodo_errno(), 12);
  dodo_errno() = 0;
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  bool differs = false;
  Rng a2(7);
  for (int i = 0; i < 100; ++i) differs |= (a2.next() != c.next());
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  RunningStats st;
  for (int i = 0; i < 200000; ++i) st.add(rng.exponential(4.0));
  EXPECT_NEAR(st.mean(), 4.0, 0.1);
}

TEST(Rng, NormalHasRequestedMoments) {
  Rng rng(17);
  RunningStats st;
  for (int i = 0; i < 200000; ++i) st.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(st.mean(), 10.0, 0.05);
  EXPECT_NEAR(st.stddev(), 3.0, 0.05);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng base(21);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (f1.next() == f2.next());
  EXPECT_EQ(same, 0);
  // Forks are deterministic too.
  Rng base2(21);
  Rng f1b = base2.fork(1);
  Rng f1a = Rng(21).fork(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(f1a.next(), f1b.next());
}

TEST(Stats, RunningStatsMatchesClosedForm) {
  RunningStats st;
  for (int i = 1; i <= 5; ++i) st.add(i);
  EXPECT_EQ(st.count(), 5);
  EXPECT_DOUBLE_EQ(st.mean(), 3.0);
  EXPECT_DOUBLE_EQ(st.variance(), 2.5);  // sample variance of 1..5
  EXPECT_DOUBLE_EQ(st.min(), 1.0);
  EXPECT_DOUBLE_EQ(st.max(), 5.0);
}

TEST(Stats, HistogramQuantiles) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
}

TEST(Stats, HistogramClampsOutliers) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(50.0);
  EXPECT_EQ(h.counts().front(), 1u);
  EXPECT_EQ(h.counts().back(), 1u);
}

}  // namespace
}  // namespace dodo
