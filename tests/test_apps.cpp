// End-to-end tests for the workloads on the full cluster harness:
// data integrity across all cache tiers, synthetic benchmark speedups at
// miniature scale, real Apriori mining through Dodo, and real out-of-core
// LU factorization verified against L*U reconstruction.
#include <gtest/gtest.h>

#include <memory>

#include "apps/block_io.hpp"
#include "apps/dmine.hpp"
#include "apps/lu.hpp"
#include "apps/synthetic.hpp"
#include "cluster/cluster.hpp"
#include "common/units.hpp"

namespace dodo::apps {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using sim::Co;

ClusterConfig tiny_config(bool use_dodo, std::uint64_t seed = 31) {
  ClusterConfig cfg;
  cfg.imd_hosts = 3;
  cfg.imd_pool = 4_MiB;
  cfg.local_cache = 1_MiB;
  cfg.page_cache_dodo = 512_KiB;
  cfg.page_cache_baseline = 2_MiB;
  cfg.use_dodo = use_dodo;
  cfg.materialize = true;
  cfg.seed = seed;
  return cfg;
}

TEST(ClusterHarness, BootsAndRegistersImds) {
  Cluster c(tiny_config(true));
  c.run_app([](Cluster& cl) -> Co<void> {
    co_await cl.sim().sleep(100_ms);
  });
  EXPECT_EQ(c.cmd().idle_host_count(), 3u);
  EXPECT_NE(c.manager(), nullptr);
  EXPECT_NE(c.dodo(), nullptr);
}

TEST(SyntheticTrace, PatternsAreSane) {
  SyntheticConfig cfg;
  cfg.dataset = 1_MiB;
  cfg.req_size = 8_KiB;
  const Bytes64 blocks = cfg.dataset / cfg.req_size;

  cfg.pattern = SyntheticConfig::Pattern::kSequential;
  auto seq = synthetic_trace(cfg, 0);
  ASSERT_EQ(seq.size(), static_cast<std::size_t>(blocks));
  for (Bytes64 i = 0; i < blocks; ++i) {
    EXPECT_EQ(seq[static_cast<std::size_t>(i)], i);
  }

  cfg.pattern = SyntheticConfig::Pattern::kRandom;
  auto rnd = synthetic_trace(cfg, 0);
  auto rnd2 = synthetic_trace(cfg, 0);
  EXPECT_EQ(rnd, rnd2);  // deterministic
  EXPECT_NE(rnd, synthetic_trace(cfg, 1));
  for (const auto b : rnd) {
    ASSERT_GE(b, 0);
    ASSERT_LT(b, blocks);
  }

  cfg.pattern = SyntheticConfig::Pattern::kHotcold;
  auto hc = synthetic_trace(cfg, 0);
  const auto hot_blocks = static_cast<Bytes64>(0.2 * static_cast<double>(blocks));
  int hot_refs = 0;
  for (const auto b : hc) hot_refs += (b < hot_blocks) ? 1 : 0;
  // 80% of references to the 20% hot region.
  EXPECT_NEAR(static_cast<double>(hot_refs) / static_cast<double>(hc.size()),
              0.8, 0.05);
}

TEST(DodoBlockIo, ContentIntegrityAcrossAllTiers) {
  // Dataset 4 MiB, local cache 1 MiB, so most regions live remotely after
  // the first sweep. Every byte read must match what was written, whether
  // it came from disk, local cache, or remote memory.
  auto cfg = tiny_config(true);
  Cluster c(cfg);
  const int fd = c.create_dataset("data", 4_MiB);
  auto* store = c.fs().store_of_inode(c.fs().inode_of(fd));
  std::vector<std::uint8_t> expect(static_cast<std::size_t>(4_MiB));
  for (std::size_t i = 0; i < expect.size(); ++i) {
    expect[i] = static_cast<std::uint8_t>((i * 131 + 11) & 0xff);
  }
  store->write(0, 4_MiB, expect.data());

  DodoBlockIo io(*c.manager(), fd, 4_MiB, 64_KiB);
  c.run_app([&]([[maybe_unused]] Cluster& cl) -> Co<void> {
    std::vector<std::uint8_t> buf(64_KiB);
    for (int sweep = 0; sweep < 3; ++sweep) {
      for (Bytes64 off = 0; off < 4_MiB; off += 64_KiB) {
        const Bytes64 got = co_await io.read(off, buf.data(), 64_KiB);
        EXPECT_EQ(got, 64_KiB);
        const bool same = std::equal(
            buf.begin(), buf.end(),
            expect.begin() + static_cast<std::ptrdiff_t>(off));
        EXPECT_TRUE(same) << "sweep " << sweep << " off " << off;
        if (!same) co_return;
      }
    }
    co_await io.finish(false);
  });
  // The workload is bigger than the local cache: remote memory must have
  // been exercised.
  EXPECT_GT(c.manager()->metrics().remote_fills +
                c.manager()->metrics().remote_passthrough,
            0u);
}

struct SyntheticOutcome {
  RunStats stats;
  SimTime elapsed;
};

SyntheticOutcome run_tiny_synthetic(SyntheticConfig scfg, bool use_dodo,
                                    manage::Policy policy) {
  auto ccfg = tiny_config(use_dodo);
  ccfg.policy = policy;
  Cluster c(ccfg);
  const int fd = c.create_dataset("data", scfg.dataset);
  std::unique_ptr<BlockIo> io;
  if (use_dodo) {
    io = std::make_unique<DodoBlockIo>(*c.manager(), fd, scfg.dataset,
                                       scfg.req_size);
  } else {
    io = std::make_unique<FsBlockIo>(c.fs(), fd);
  }
  SyntheticOutcome out;
  out.elapsed = c.run_app([&]([[maybe_unused]] Cluster& cl) -> Co<void> {
    co_await run_synthetic(cl, *io, scfg, &out.stats);
  });
  return out;
}

TEST(Synthetic, RandomBenefitsFromRemoteMemory) {
  SyntheticConfig s;
  s.pattern = SyntheticConfig::Pattern::kRandom;
  s.dataset = 8_MiB;
  s.req_size = 8_KiB;
  s.iterations = 3;
  s.compute_per_req = 1_ms;
  auto base = run_tiny_synthetic(s, false, manage::Policy::kLru);
  auto dodo = run_tiny_synthetic(s, true, manage::Policy::kLru);
  ASSERT_EQ(base.stats.iteration_time.size(), 3u);
  ASSERT_EQ(dodo.stats.iteration_time.size(), 3u);
  // Steady state (iterations 2+) must be clearly faster with Dodo.
  EXPECT_LT(dodo.stats.steady_seconds(), base.stats.steady_seconds() * 0.6);
}

TEST(Synthetic, SequentialGainsLittle) {
  SyntheticConfig s;
  s.pattern = SyntheticConfig::Pattern::kSequential;
  s.dataset = 8_MiB;
  s.req_size = 8_KiB;
  s.iterations = 3;
  s.compute_per_req = 1_ms;
  auto base = run_tiny_synthetic(s, false, manage::Policy::kLru);
  auto dodo = run_tiny_synthetic(s, true, manage::Policy::kLru);
  const double speedup =
      base.stats.steady_seconds() / dodo.stats.steady_seconds();
  // The filesystem streams sequential reads; remote memory can't beat it
  // by much (paper: "virtually no speedup for sequential").
  EXPECT_LT(speedup, 1.45);
  EXPECT_GT(speedup, 0.75);
}

TEST(Dmine, EncodeDecodeRoundTrip) {
  DmineConfig cfg;
  cfg.num_transactions = 500;
  cfg.block = 4096;
  auto txns = generate_transactions(cfg);
  auto bytes = encode_transactions(txns, cfg.block);
  ASSERT_EQ(static_cast<Bytes64>(bytes.size()) % cfg.block, 0);
  std::vector<Transaction> decoded;
  for (Bytes64 off = 0; off < static_cast<Bytes64>(bytes.size());
       off += cfg.block) {
    auto blk = decode_block(bytes.data() + off, cfg.block);
    decoded.insert(decoded.end(), blk.begin(), blk.end());
  }
  ASSERT_EQ(decoded.size(), txns.size());
  EXPECT_EQ(decoded, txns);
}

TEST(Dmine, ReferenceMinerFindsEmbeddedPatterns) {
  DmineConfig cfg;
  cfg.num_transactions = 4000;
  cfg.num_items = 100;
  cfg.avg_items = 8;
  cfg.num_patterns = 4;
  cfg.pattern_prob = 0.5;
  cfg.min_support = 0.08;
  auto txns = generate_transactions(cfg);
  auto levels = apriori_reference(txns, cfg.min_support);
  ASSERT_GE(levels.size(), 2u);     // frequent singletons and pairs at least
  EXPECT_FALSE(levels[0].empty());
  EXPECT_FALSE(levels[1].empty());
}

TEST(Dmine, RealMinerOverDodoMatchesReference) {
  DmineConfig cfg;
  cfg.num_transactions = 3000;
  cfg.num_items = 80;
  cfg.avg_items = 8;
  cfg.num_patterns = 4;
  cfg.pattern_prob = 0.5;
  cfg.min_support = 0.1;
  cfg.block = 16_KiB;
  auto txns = generate_transactions(cfg);
  auto bytes = encode_transactions(txns, cfg.block);
  const auto dataset = static_cast<Bytes64>(bytes.size());
  const auto expected = apriori_reference(txns, cfg.min_support);

  auto ccfg = tiny_config(true);
  ccfg.local_cache = 64_KiB;  // force remote traffic
  ccfg.policy = manage::Policy::kFirstIn;
  Cluster c(ccfg);
  const int fd = c.create_dataset("txns", dataset);
  c.fs().store_of_inode(c.fs().inode_of(fd))->write(0, dataset, bytes.data());

  DodoBlockIo io(*c.manager(), fd, dataset, cfg.block);
  RunStats stats;
  std::vector<std::vector<ItemSet>> levels;
  c.run_app([&]([[maybe_unused]] Cluster& cl) -> Co<void> {
    co_await run_dmine_real(cl, io, cfg, dataset, &stats, &levels);
  });
  EXPECT_EQ(levels, expected);
  EXPECT_GT(stats.requests, 0u);
}

TEST(Dmine, SecondRunAvoidsDisk) {
  auto ccfg = tiny_config(true);
  ccfg.local_cache = 64_KiB;
  ccfg.policy = manage::Policy::kFirstIn;
  Cluster c(ccfg);
  const Bytes64 dataset = 1_MiB;
  const int fd = c.create_dataset("txns", dataset);

  RunStats run1, run2;
  {
    DodoBlockIo io(*c.manager(), fd, dataset, 64_KiB);
    c.run_app([&]([[maybe_unused]] Cluster& cl) -> Co<void> {
      co_await run_dmine_modeled(cl, io, dataset, 64_KiB, 1_ms, 3, &run1);
    });
    c.run_app([&]([[maybe_unused]] Cluster& cl) -> Co<void> {
      co_await cl.dodo()->detach();
    });
  }
  // "New process": fresh client + manager, same client id.
  c.restart_client();
  const auto disk_reads_before = c.fs().disk().metrics().reads;
  {
    DodoBlockIo io(*c.manager(), fd, dataset, 64_KiB);
    c.run_app([&]([[maybe_unused]] Cluster& cl) -> Co<void> {
      co_await run_dmine_modeled(cl, io, dataset, 64_KiB, 1_ms, 3, &run2);
    });
  }
  // Run 2 is served from remote memory: no new disk reads, faster run.
  EXPECT_EQ(c.fs().disk().metrics().reads, disk_reads_before);
  EXPECT_LT(run2.total(), run1.total());
}

TEST(Lu, RealFactorizationIsCorrectViaBaselineIo) {
  LuConfig cfg;
  cfg.n = 64;
  cfg.slab_cols = 8;
  cfg.files = 2;
  auto ccfg = tiny_config(false);
  Cluster c(ccfg);
  const int fd = c.create_dataset("matrix", cfg.total_bytes());
  auto* store = c.fs().store_of_inode(c.fs().inode_of(fd));
  const auto a = lu_make_matrix(cfg);
  lu_store_matrix(*store, cfg, a);

  FsBlockIo io(c.fs(), fd);
  RunStats stats;
  c.run_app([&]([[maybe_unused]] Cluster& cl) -> Co<void> {
    co_await run_lu_real(cl, io, cfg, &stats);
  });
  const auto packed = lu_load_matrix(*store, cfg);
  EXPECT_LT(lu_verify(packed, a, cfg.n), 1e-8);
  // Triangle scan: loads of earlier slabs dominate the request count.
  const auto s = static_cast<std::uint64_t>(cfg.slabs());
  const auto f = static_cast<std::uint64_t>(cfg.files);
  EXPECT_EQ(stats.requests, f * (2 * s + s * (s - 1) / 2));
}

TEST(Lu, RealFactorizationIsCorrectViaDodo) {
  LuConfig cfg;
  cfg.n = 64;
  cfg.slab_cols = 8;
  cfg.files = 2;
  auto ccfg = tiny_config(true);
  ccfg.local_cache = 8_KiB;  // a couple of chunks: forces remote traffic
  ccfg.policy = manage::Policy::kFirstIn;
  Cluster c(ccfg);
  const int fd = c.create_dataset("matrix", cfg.total_bytes());
  auto* store = c.fs().store_of_inode(c.fs().inode_of(fd));
  const auto a = lu_make_matrix(cfg);
  lu_store_matrix(*store, cfg, a);

  DodoBlockIo io(*c.manager(), fd, cfg.total_bytes(), cfg.chunk_bytes());
  RunStats stats;
  c.run_app([&]([[maybe_unused]] Cluster& cl) -> Co<void> {
    co_await run_lu_real(cl, io, cfg, &stats);
  });
  const auto packed = lu_load_matrix(*store, cfg);
  EXPECT_LT(lu_verify(packed, a, cfg.n), 1e-8);
}

}  // namespace
}  // namespace dodo::apps
