// Failure-injection integration tests: workstations get reclaimed or crash
// *while the application is running*, and everything must degrade to disk
// without corrupting a single byte — the end-to-end property the paper's
// whole failure design (epochs, keep-alive, descriptor drops, write-through)
// exists to provide. Also covers the multi-client extension the paper's
// §4.3 footnote sketches (client id in the region key).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "apps/block_io.hpp"
#include "apps/synthetic.hpp"
#include "cluster/cluster.hpp"
#include "common/units.hpp"

namespace dodo {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using sim::Co;

ClusterConfig small_config(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.imd_hosts = 4;
  cfg.imd_pool = 4_MiB;
  cfg.local_cache = 512_KiB;
  cfg.page_cache_dodo = 256_KiB;
  cfg.seed = seed;
  return cfg;
}

/// Fills the dataset with a recognizable pattern and returns it.
std::vector<std::uint8_t> fill_dataset(Cluster& c, int fd, Bytes64 size) {
  auto* store = c.fs().store_of_inode(c.fs().inode_of(fd));
  std::vector<std::uint8_t> expect(static_cast<std::size_t>(size));
  for (std::size_t i = 0; i < expect.size(); ++i) {
    expect[i] = static_cast<std::uint8_t>((i * 167 + 43) & 0xff);
  }
  store->write(0, size, expect.data());
  return expect;
}

class HostCrashSweep : public ::testing::TestWithParam<int> {};

TEST_P(HostCrashSweep, ReadsStayCorrectWhenHostsDieMidRun) {
  // Kill host (2 + param) partway through a scanning workload; every read
  // before, during, and after the crash must return the right bytes.
  const int victim = GetParam();
  Cluster c(small_config(100 + static_cast<std::uint64_t>(victim)));
  const Bytes64 dataset = 4_MiB;
  const int fd = c.create_dataset("data", dataset);
  const auto expect = fill_dataset(c, fd, dataset);

  apps::DodoBlockIo io(*c.manager(), fd, dataset, 32_KiB);
  bool mismatch = false;
  c.sim().schedule(800_ms, [&] {
    c.network().set_node_up(static_cast<net::NodeId>(2 + victim), false);
  });
  c.run_app([&]([[maybe_unused]] Cluster& cl) -> Co<void> {
    std::vector<std::uint8_t> buf(32_KiB);
    for (int sweep = 0; sweep < 3; ++sweep) {
      for (Bytes64 off = 0; off < dataset; off += 32_KiB) {
        const Bytes64 got = co_await io.read(off, buf.data(), 32_KiB);
        EXPECT_EQ(got, 32_KiB);
        if (!std::equal(buf.begin(), buf.end(),
                        expect.begin() + static_cast<std::ptrdiff_t>(off))) {
          mismatch = true;
        }
      }
    }
    co_await io.finish(false);
  }, 600_s);
  EXPECT_FALSE(mismatch);
  // The library noticed and dropped the dead host's descriptors.
  EXPECT_GE(c.dodo()->metrics().nodes_dropped, 1u);
}

INSTANTIATE_TEST_SUITE_P(Victims, HostCrashSweep, ::testing::Values(0, 1, 2, 3));

TEST(Failure, AllHostsDieAndWorkloadStillCompletes) {
  Cluster c(small_config(7));
  const Bytes64 dataset = 2_MiB;
  const int fd = c.create_dataset("data", dataset);
  const auto expect = fill_dataset(c, fd, dataset);
  apps::DodoBlockIo io(*c.manager(), fd, dataset, 32_KiB);
  c.sim().schedule(500_ms, [&] {
    for (int h = 0; h < 4; ++h) {
      c.network().set_node_up(static_cast<net::NodeId>(2 + h), false);
    }
  });
  bool mismatch = false;
  c.run_app([&]([[maybe_unused]] Cluster& cl) -> Co<void> {
    std::vector<std::uint8_t> buf(32_KiB);
    for (int sweep = 0; sweep < 3; ++sweep) {
      for (Bytes64 off = 0; off < dataset; off += 32_KiB) {
        co_await io.read(off, buf.data(), 32_KiB);
        if (!std::equal(buf.begin(), buf.end(),
                        expect.begin() + static_cast<std::ptrdiff_t>(off))) {
          mismatch = true;
        }
      }
    }
    co_await io.finish(false);
  }, 1200_s);
  EXPECT_FALSE(mismatch);
}

TEST(Failure, DirtyDataSurvivesHostReclaimBecauseOfWriteThrough) {
  // Write through libmanage, force it remote, kill the host, read back:
  // the eviction write-back / csync path must have made disk authoritative.
  Cluster c(small_config(9));
  const Bytes64 dataset = 1_MiB;
  const int fd = c.create_dataset("data", dataset);
  apps::DodoBlockIo io(*c.manager(), fd, dataset, 64_KiB);
  std::vector<std::uint8_t> payload(64_KiB, 0xA5);
  bool ok = false;
  c.run_app([&]([[maybe_unused]] Cluster& cl) -> Co<void> {
    for (Bytes64 off = 0; off < dataset; off += 64_KiB) {
      co_await io.write(off, payload.data(), 64_KiB);
    }
    // Push every dirty region to disk + remote.
    for (Bytes64 off = 0; off < dataset; off += 64_KiB) {
      co_await io.read(off, nullptr, 1);  // touch so regions exist
    }
    co_await io.finish(false);
    ok = true;
  }, 600_s);
  EXPECT_TRUE(ok);
  // After close_all(false), the backing file holds the written data.
  auto* store = c.fs().store_of_inode(c.fs().inode_of(fd));
  std::vector<std::uint8_t> disk_bytes(64_KiB);
  store->read(512_KiB, 64_KiB, disk_bytes.data());
  EXPECT_EQ(disk_bytes, payload);
}

TEST(Failure, TwoClientsShareTheClusterWithoutCollision) {
  // Multi-client extension (§4.3 footnote): region keys carry the client
  // id, so two applications using the same backing-file inode+offset get
  // *separate* remote regions.
  ClusterConfig cfg = small_config(11);
  Cluster c(cfg);
  const Bytes64 size = 256_KiB;
  const int fd = c.create_dataset("shared", size);

  // Second client on another node (node 0 is the cmd; reuse imd host 5's
  // id space — any node with a free kClientPort works).
  runtime::ClientParams cp2;
  cp2.client_id = 2;
  auto client2 = std::make_unique<runtime::DodoClient>(
      c.sim(), c.network(), /*node=*/2, c.cmd().endpoint(), c.fs(), cp2);
  client2->start();

  bool done = false;
  c.run_app([&]([[maybe_unused]] Cluster& cl) -> Co<void> {
    auto& c1 = *cl.dodo();
    auto& c2 = *client2;
    const int r1 = co_await c1.mopen(64_KiB, fd, 0);
    const int r2 = co_await c2.mopen(64_KiB, fd, 0);  // same key range!
    EXPECT_GE(r1, 0);
    EXPECT_GE(r2, 0);
    std::vector<std::uint8_t> d1(64_KiB, 0x11), d2(64_KiB, 0x22);
    const Status s1 = co_await c1.push_remote(r1, 0, d1.data(), 64_KiB);
    const Status s2 = co_await c2.push_remote(r2, 0, d2.data(), 64_KiB);
    EXPECT_EQ(s1.code(), Err::kOk);
    EXPECT_EQ(s2.code(), Err::kOk);
    std::vector<std::uint8_t> back(64_KiB, 0);
    EXPECT_EQ(co_await c1.mread(r1, 0, back.data(), 64_KiB), 64_KiB);
    EXPECT_EQ(back, d1);
    EXPECT_EQ(co_await c2.mread(r2, 0, back.data(), 64_KiB), 64_KiB);
    EXPECT_EQ(back, d2);
    done = true;
  }, 60_s);
  EXPECT_TRUE(done);
  EXPECT_EQ(c.cmd().region_count(), 2u);  // distinct regions, not shared
}

TEST(Failure, LossyNetworkStillDeliversCorrectData) {
  // 2% datagram loss across the whole cluster: RPC retries and bulk NACKs
  // must absorb it with zero data corruption.
  ClusterConfig cfg = small_config(13);
  cfg.net = net::NetParams::unet();
  cfg.net.loss_rate = 0.02;
  cfg.client.bulk.max_retries = 50;
  Cluster c(cfg);
  const Bytes64 dataset = 1_MiB;
  const int fd = c.create_dataset("data", dataset);
  const auto expect = fill_dataset(c, fd, dataset);
  apps::DodoBlockIo io(*c.manager(), fd, dataset, 32_KiB);
  bool mismatch = false;
  c.run_app([&]([[maybe_unused]] Cluster& cl) -> Co<void> {
    std::vector<std::uint8_t> buf(32_KiB);
    for (int sweep = 0; sweep < 2; ++sweep) {
      for (Bytes64 off = 0; off < dataset; off += 32_KiB) {
        co_await io.read(off, buf.data(), 32_KiB);
        if (!std::equal(buf.begin(), buf.end(),
                        expect.begin() + static_cast<std::ptrdiff_t>(off))) {
          mismatch = true;
        }
      }
    }
    co_await io.finish(false);
  }, 1200_s);
  EXPECT_FALSE(mismatch);
  EXPECT_GT(c.network().metrics().datagrams_lost, 0u);
}

}  // namespace
}  // namespace dodo
