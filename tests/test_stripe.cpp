// Striped multi-imd regions (DESIGN.md §11): the cmd splits large regions
// into fragments placed on distinct idle hosts and the runtime fans
// per-fragment reads/writes out in parallel, so one mread aggregates the
// bandwidth of several imds. These tests pin down the placement policy, the
// byte-exact reassembly across fragment boundaries, fragment-granular
// failure degradation, and the sibling net.read spans in the trace tree.
// Labeled `stripe` (ctest -L stripe / the stripe test preset).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "common/units.hpp"
#include "core/cmd.hpp"
#include "core/imd.hpp"
#include "disk/filesystem.hpp"
#include "obs/span.hpp"
#include "runtime/dodo_client.hpp"
#include "sim/simulator.hpp"

namespace dodo::runtime {
namespace {

using sim::Co;
using sim::Simulator;

// Node 0: cmd. Node 1: application. Nodes 2..1+hosts: imds.
struct StripeFixture {
  Simulator sim{41};
  net::Network net;
  obs::SpanRecorder spans;
  core::CentralManager cmd;
  disk::SimFilesystem fs;
  std::vector<std::unique_ptr<core::IdleMemoryDaemon>> imds;
  DodoClient client;
  int fd = -1;

  explicit StripeFixture(int hosts, int width,
                         Bytes64 min_fragment = 4_KiB,
                         Bytes64 pool = 16_MiB)
      : net(sim, net::NetParams::unet(),
            static_cast<std::size_t>(hosts) + 2),
        spans(sim),
        cmd(sim, net, 0, make_cmd_params(width, min_fragment)),
        fs(sim),
        client(sim, net, 1, net::Endpoint{0, core::kCmdPort}, fs,
               make_client_params(&spans)) {
    cmd.start();
    for (int i = 0; i < hosts; ++i) {
      core::ImdParams p;
      p.pool_bytes = pool;
      imds.push_back(std::make_unique<core::IdleMemoryDaemon>(
          sim, net, static_cast<net::NodeId>(i + 2), 1,
          net::Endpoint{0, core::kCmdPort}, p));
      imds.back()->start();
    }
    fs.create("backing", 8_MiB);
    fd = fs.open("backing", disk::OpenMode::kReadWrite);
    client.start();
  }

  static core::CmdParams make_cmd_params(int width, Bytes64 min_fragment) {
    core::CmdParams p;
    p.stripe_width = width;
    p.stripe_min_fragment = min_fragment;
    return p;
  }

  static ClientParams make_client_params(obs::SpanRecorder* rec) {
    ClientParams p;
    p.spans = rec;
    return p;
  }

  template <typename F>
  void run(F&& body, SimTime limit = 120_s) {
    bool finished = false;
    sim.spawn([](StripeFixture& f, F fn, bool& done) -> Co<void> {
      co_await f.sim.sleep(5_ms);  // let daemons register
      co_await fn(f);
      done = true;
    }(*this, std::forward<F>(body), finished));
    sim.run(limit);
    EXPECT_TRUE(finished) << "test body did not complete";
  }

  [[nodiscard]] int hosts_holding_regions() const {
    int n = 0;
    for (const auto& imd : imds) n += imd->region_count() > 0 ? 1 : 0;
    return n;
  }
};

net::Buf pattern(std::size_t n, std::uint8_t salt = 0) {
  net::Buf b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 131 + salt) & 0xff);
  }
  return b;
}

TEST(Stripe, FragmentsLandOnDistinctHosts) {
  StripeFixture fx(4, 4);
  fx.run([](StripeFixture& f) -> Co<void> {
    const int rd = co_await f.client.mopen(256_KiB, f.fd, 0);
    EXPECT_GE(rd, 0);
    co_await f.sim.sleep(10_ms);
    // One directory entry, four fragments, one per host.
    EXPECT_EQ(f.cmd.region_count(), 1u);
    EXPECT_EQ(f.hosts_holding_regions(), 4);
    for (const auto& imd : f.imds) EXPECT_EQ(imd->region_count(), 1u);
  });
  EXPECT_EQ(fx.cmd.metrics().fragments_placed, 4u);
  EXPECT_EQ(fx.cmd.metrics().striped_regions, 1u);
}

TEST(Stripe, SmallRegionStaysWhole) {
  // stripe_min_fragment floors the split: a region at or below it is a
  // single fragment on a single host no matter the configured width.
  StripeFixture fx(4, 4, /*min_fragment=*/64_KiB);
  fx.run([](StripeFixture& f) -> Co<void> {
    const int rd = co_await f.client.mopen(64_KiB, f.fd, 0);
    EXPECT_GE(rd, 0);
    co_await f.sim.sleep(10_ms);
    EXPECT_EQ(f.hosts_holding_regions(), 1);
  });
  EXPECT_EQ(fx.cmd.metrics().fragments_placed, 1u);
  EXPECT_EQ(fx.cmd.metrics().striped_regions, 0u);
}

TEST(Stripe, WidthClampsToAvailableHosts) {
  // Asking for more stripes than there are idle hosts degrades gracefully
  // to the host count instead of failing or doubling up needlessly.
  StripeFixture fx(2, 4);
  fx.run([](StripeFixture& f) -> Co<void> {
    const int rd = co_await f.client.mopen(256_KiB, f.fd, 0);
    EXPECT_GE(rd, 0);
    co_await f.sim.sleep(10_ms);
    EXPECT_EQ(f.hosts_holding_regions(), 2);
  });
  EXPECT_EQ(fx.cmd.metrics().fragments_placed, 2u);
  EXPECT_EQ(fx.cmd.metrics().striped_regions, 1u);
}

TEST(Stripe, RoundTripIsByteExactAcrossFragmentBoundaries) {
  StripeFixture fx(4, 4);
  fx.run([](StripeFixture& f) -> Co<void> {
    const Bytes64 rlen = 256_KiB;  // 4 x 64 KiB fragments
    const int rd = co_await f.client.mopen(rlen, f.fd, 0);
    EXPECT_GE(rd, 0);
    net::Buf data = pattern(static_cast<std::size_t>(rlen), 11);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), rlen), rlen);

    // Full-region read.
    net::Buf back(static_cast<std::size_t>(rlen), 0);
    EXPECT_EQ(co_await f.client.mread(rd, 0, back.data(), rlen), rlen);
    EXPECT_EQ(back, data);

    // Unaligned reads that start/end mid-fragment and span boundaries.
    const Bytes64 cases[][2] = {
        {64_KiB - 7, 14},          // straddles the first boundary
        {1, 192_KiB},              // covers two interior boundaries
        {128_KiB, 64_KiB},         // exactly one fragment
        {rlen - 1, 1},             // the final byte
        {200_KiB + 3, 56_KiB - 4}  // tail crossing into the last fragment
    };
    for (const auto& c : cases) {
      net::Buf part(static_cast<std::size_t>(c[1]), 0);
      EXPECT_EQ(co_await f.client.mread(rd, c[0], part.data(), c[1]), c[1]);
      EXPECT_TRUE(std::equal(part.begin(), part.end(),
                             data.begin() + static_cast<std::ptrdiff_t>(c[0])))
          << "read at offset " << c[0] << " len " << c[1] << " diverged";
    }

    // Unaligned write across a boundary, then read it back.
    net::Buf patch = pattern(10_KiB, 77);
    EXPECT_EQ(co_await f.client.mwrite(rd, 60_KiB, patch.data(), 10_KiB),
              10_KiB);
    net::Buf got(10_KiB, 0);
    EXPECT_EQ(co_await f.client.mread(rd, 60_KiB, got.data(), 10_KiB),
              10_KiB);
    EXPECT_EQ(got, patch);
  });
  EXPECT_EQ(fx.client.metrics().disk_fallbacks, 0u);
  EXPECT_EQ(fx.client.metrics().mreads_degraded, 0u);
  EXPECT_EQ(fx.client.metrics().mreads_total, fx.client.metrics().remote_hits);
}

TEST(Stripe, LostFragmentDegradesOnlyItsRange) {
  StripeFixture fx(4, 4);
  fx.run([](StripeFixture& f) -> Co<void> {
    const Bytes64 rlen = 256_KiB;
    const int rd = co_await f.client.mopen(rlen, f.fd, 0);
    EXPECT_GE(rd, 0);
    net::Buf data = pattern(static_cast<std::size_t>(rlen), 23);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), rlen), rlen);

    // Kill one stripe owner. Write-through means disk already holds the
    // same bytes, so the degraded read must still be byte-exact.
    f.net.set_node_up(3, false);
    net::Buf back(static_cast<std::size_t>(rlen), 0);
    const auto rr = co_await f.client.mread_ex(rd, 0, back.data(), rlen);
    EXPECT_EQ(rr.n, rlen);
    EXPECT_TRUE(rr.filled);
    EXPECT_EQ(back, data);
    // Exactly one 64 KiB fragment range fell back to the backing file.
    EXPECT_EQ(rr.disk_ranges.size(), 1u);
    if (!rr.disk_ranges.empty()) EXPECT_EQ(rr.disk_ranges[0].second, 64_KiB);
    // The failed host's descriptors are gone; the others were dropped with
    // it (this descriptor spans all four hosts).
    EXPECT_FALSE(f.client.active(rd));
  });
  // Fragment-granular accounting: one lost fragment, one disk fallback,
  // one degraded read; the three surviving fragments still counted reads.
  EXPECT_EQ(fx.client.metrics().disk_fallbacks, 1u);
  EXPECT_EQ(fx.client.metrics().mreads_degraded, 1u);
  EXPECT_EQ(fx.client.metrics().remote_hits, 0u);
  EXPECT_EQ(fx.client.metrics().access_failures, 1u);
  EXPECT_EQ(fx.client.metrics().nodes_dropped, 1u);
}

TEST(Stripe, SiblingNetReadSpansUnderOneMread) {
  StripeFixture fx(4, 4);
  fx.run([](StripeFixture& f) -> Co<void> {
    const Bytes64 rlen = 256_KiB;
    const int rd = co_await f.client.mopen(rlen, f.fd, 0);
    EXPECT_GE(rd, 0);
    net::Buf data = pattern(static_cast<std::size_t>(rlen), 31);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), rlen), rlen);
    net::Buf back(static_cast<std::size_t>(rlen), 0);
    EXPECT_EQ(co_await f.client.mread(rd, 0, back.data(), rlen), rlen);
  });
  // Find the client.mread span and count its direct net.read children:
  // one per fragment, all under the same parent (sibling fan-out).
  std::uint64_t mread_id = 0;
  for (const obs::SpanRecord& s : fx.spans.spans()) {
    if (s.name == "client.mread") {
      EXPECT_EQ(mread_id, 0u) << "more than one client.mread span";
      mread_id = s.id;
    }
  }
  ASSERT_NE(mread_id, 0u);
  int net_reads = 0;
  for (const obs::SpanRecord& s : fx.spans.spans()) {
    if (s.name == "net.read" && s.parent == mread_id) ++net_reads;
  }
  EXPECT_EQ(net_reads, 4);
}

TEST(Stripe, ZeroLengthAndExactEndThroughStripedPath) {
  StripeFixture fx(4, 4);
  fx.run([](StripeFixture& f) -> Co<void> {
    const Bytes64 rlen = 256_KiB;
    const int rd = co_await f.client.mopen(rlen, f.fd, 0);
    EXPECT_GE(rd, 0);
    net::Buf data = pattern(static_cast<std::size_t>(rlen), 43);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), rlen), rlen);

    // Zero-length: no sockets, no conservation entry, even when the region
    // is striped across four hosts.
    const auto before = f.client.metrics();
    const auto sent_before = f.net.metrics().datagrams_sent;
    net::Buf back(static_cast<std::size_t>(rlen), 0);
    EXPECT_EQ(co_await f.client.mread(rd, 0, back.data(), 0), 0);
    EXPECT_EQ(co_await f.client.mread(rd, 96_KiB, back.data(), 0), 0);
    EXPECT_EQ(f.net.metrics().datagrams_sent, sent_before);
    EXPECT_EQ(f.client.metrics().mreads_total, before.mreads_total);

    // Exact-end: the last byte lives in the final fragment; an over-long
    // read clips to it and only that fragment is touched.
    EXPECT_EQ(co_await f.client.mread(rd, rlen - 1, back.data(), 100), 1);
    EXPECT_EQ(back[0], data[static_cast<std::size_t>(rlen) - 1]);
    EXPECT_EQ(co_await f.client.mwrite(rd, rlen - 1, data.data(), 100), 1);
    // Offset == len is past the end even for zero-length accesses.
    EXPECT_EQ(co_await f.client.mread(rd, rlen, back.data(), 0), -1);
    EXPECT_EQ(dodo_errno(), kDodoEINVAL);
  });
  EXPECT_EQ(fx.client.metrics().disk_fallbacks, 0u);
  EXPECT_EQ(fx.client.metrics().mreads_degraded, 0u);
}

TEST(Stripe, WidthOneMatchesLegacySingleRegionPlacement) {
  // The default width must reproduce the paper's whole-region behavior:
  // one fragment, one host, identical metrics semantics.
  StripeFixture fx(4, 1);
  fx.run([](StripeFixture& f) -> Co<void> {
    const Bytes64 rlen = 256_KiB;
    const int rd = co_await f.client.mopen(rlen, f.fd, 0);
    EXPECT_GE(rd, 0);
    co_await f.sim.sleep(10_ms);
    EXPECT_EQ(f.hosts_holding_regions(), 1);
    net::Buf data = pattern(static_cast<std::size_t>(rlen), 3);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), rlen), rlen);
    net::Buf back(static_cast<std::size_t>(rlen), 0);
    EXPECT_EQ(co_await f.client.mread(rd, 0, back.data(), rlen), rlen);
    EXPECT_EQ(back, data);
    EXPECT_EQ(co_await f.client.mclose(rd), 0);
  });
  EXPECT_EQ(fx.cmd.metrics().fragments_placed, 1u);
  EXPECT_EQ(fx.cmd.metrics().striped_regions, 0u);
  EXPECT_EQ(fx.client.metrics().remote_hits, 1u);
}

TEST(Stripe, McloseFreesEveryFragment) {
  StripeFixture fx(4, 4);
  fx.run([](StripeFixture& f) -> Co<void> {
    const int rd = co_await f.client.mopen(256_KiB, f.fd, 0);
    EXPECT_GE(rd, 0);
    co_await f.sim.sleep(10_ms);
    EXPECT_EQ(f.hosts_holding_regions(), 4);
    EXPECT_EQ(co_await f.client.mclose(rd), 0);
    co_await f.sim.sleep(10_ms);
    EXPECT_EQ(f.cmd.region_count(), 0u);
    EXPECT_EQ(f.hosts_holding_regions(), 0);
  });
  EXPECT_EQ(fx.cmd.metrics().frees, 1u);
}

}  // namespace
}  // namespace dodo::runtime
