// Observability layer tests: metric primitive semantics, histogram bucket
// boundaries, snapshot merge/prefix algebra, JSON round-trips with a strict
// parser, span recording + TSV round-trips, deterministic same-seed exports
// from a full cluster run, and the kStats scrape path under load.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/block_io.hpp"
#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "obs/critical_path.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace_merge.hpp"
#include "sim/simulator.hpp"

namespace dodo {
namespace {

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

TEST(Counter, MonotonicIncrements) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndSignedAdd) {
  obs::Gauge g;
  g.set(100);
  g.add(-150);
  EXPECT_EQ(g.value(), -50);
  g.add(50);
  EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, BucketBoundariesAreInclusive) {
  obs::LatencyHistogram h({10, 100, 1000});
  ASSERT_EQ(h.counts().size(), 4u);  // 3 bounds + overflow
  h.observe(10);    // exactly at bound 0 -> bucket 0 (inclusive)
  h.observe(11);    // just past -> bucket 1
  h.observe(100);   // at bound 1 -> bucket 1
  h.observe(1000);  // at last bound -> bucket 2
  h.observe(1001);  // past every bound -> overflow
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[1], 2u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 10 + 11 + 100 + 1000 + 1001);
  EXPECT_EQ(h.min(), 10);
  EXPECT_EQ(h.max(), 1001);
}

TEST(Histogram, EmptyReportsZeroMinMax) {
  obs::LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(Histogram, DefaultBoundsCoverSimLatencies) {
  obs::LatencyHistogram h;
  h.observe(1_us);   // fastest bound exactly
  h.observe(10_s);   // slowest bound exactly
  h.observe(11_s);   // overflow
  EXPECT_EQ(h.counts().front(), 1u);
  EXPECT_EQ(h.counts().back(), 1u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, DefaultBoundsPinnedToSharedConstant) {
  // kLatencyBucketBounds is the one source of truth for every latency
  // histogram in the repo: the decade ladder from 1us to 10s. Exported
  // JSON and the telemetry quantile estimates both depend on these exact
  // values, so a change here is a format change — update DESIGN.md §9.
  const std::vector<Duration> expect = {1_us, 10_us, 100_us, 1_ms,
                                        10_ms, 100_ms, 1_s,   10_s};
  ASSERT_EQ(obs::kLatencyBucketCount, expect.size());
  EXPECT_EQ(obs::LatencyHistogram::default_bounds(), expect);
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(obs::kLatencyBucketBounds[i], expect[i]) << "bound " << i;
  }
  EXPECT_EQ(obs::LatencyHistogram().counts().size(), expect.size() + 1);
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

obs::MetricsSnapshot sample_snapshot() {
  obs::MetricsSnapshot s;
  s.set_counter("reads", 7);
  s.set_gauge("pool", -3);
  obs::LatencyHistogram h;
  h.observe(5_us);
  h.observe(2_ms);
  s.set_histogram("lat", h);
  return s;
}

TEST(Snapshot, MergeAddsCountersGaugesAndBuckets) {
  obs::MetricsSnapshot a = sample_snapshot();
  obs::MetricsSnapshot b = sample_snapshot();
  a.merge(b);
  EXPECT_EQ(a.counter_value("reads"), 14u);
  EXPECT_EQ(a.gauge_value("pool"), -6);
  const obs::MetricValue* lat = a.find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 4u);
  EXPECT_EQ(lat->sum, 2 * (5_us + 2_ms));
  EXPECT_EQ(lat->min, 5_us);
  EXPECT_EQ(lat->max, 2_ms);
}

TEST(Snapshot, MergeIntoEmptyCopiesShape) {
  obs::MetricsSnapshot a;
  a.merge(sample_snapshot());
  EXPECT_EQ(a, sample_snapshot());
}

TEST(Snapshot, PrefixedNamespacesEveryName) {
  obs::MetricsSnapshot p = sample_snapshot().prefixed("host3.");
  EXPECT_EQ(p.counter_value("host3.reads"), 7u);
  EXPECT_EQ(p.counter_value("reads"), 0u);
  EXPECT_EQ(p.size(), sample_snapshot().size());
}

TEST(Snapshot, LookupOfAbsentNameIsZero) {
  obs::MetricsSnapshot s;
  EXPECT_EQ(s.counter_value("nope"), 0u);
  EXPECT_EQ(s.gauge_value("nope"), 0);
  EXPECT_EQ(s.find("nope"), nullptr);
}

TEST(Snapshot, JsonRoundTripIsExact) {
  const obs::MetricsSnapshot s = sample_snapshot();
  obs::MetricsSnapshot back;
  std::string err;
  ASSERT_TRUE(obs::MetricsSnapshot::from_json(s.to_json(), back, &err)) << err;
  EXPECT_EQ(back, s);
  // And the re-export is byte-identical, not merely semantically equal.
  EXPECT_EQ(back.to_json(), s.to_json());
}

TEST(Snapshot, JsonParserRejectsGarbage) {
  obs::MetricsSnapshot out;
  std::string err;
  EXPECT_FALSE(obs::MetricsSnapshot::from_json("", out, &err));
  EXPECT_FALSE(obs::MetricsSnapshot::from_json("{", out, &err));
  EXPECT_FALSE(obs::MetricsSnapshot::from_json("[1,2]", out, &err));
  EXPECT_FALSE(obs::MetricsSnapshot::from_json(
      R"({"x":{"type":"sundial","value":1}})", out, &err));
  EXPECT_FALSE(err.empty());
}

TEST(Snapshot, WithoutZerosDropsOnlyZeroValuedEntries) {
  obs::MetricsSnapshot s = sample_snapshot();
  s.set_counter("idle", 0);
  s.set_gauge("empty", 0);
  s.set_histogram("quiet", obs::LatencyHistogram{});
  const obs::MetricsSnapshot trimmed = s.without_zeros();
  EXPECT_EQ(trimmed.find("idle"), nullptr);
  EXPECT_EQ(trimmed.find("empty"), nullptr);
  EXPECT_EQ(trimmed.find("quiet"), nullptr);
  // Everything nonzero survives untouched — including negative gauges.
  EXPECT_EQ(trimmed.counter_value("reads"), 7u);
  EXPECT_EQ(trimmed.gauge_value("pool"), -3);
  ASSERT_NE(trimmed.find("lat"), nullptr);
  EXPECT_EQ(trimmed.size(), sample_snapshot().size());
  // Never applied by default: the plain export still carries the zeros.
  EXPECT_NE(s.to_json(), trimmed.to_json());
}

TEST(Registry, SnapshotGathersLiveCellsAndAbsorbed) {
  obs::MetricsRegistry reg;
  reg.counter("c").inc(3);
  reg.gauge("g").set(9);
  reg.histogram("h").observe(1_ms);
  obs::MetricsSnapshot ext;
  ext.set_counter("c", 1);  // absorbed snapshots merge with live cells
  reg.absorb(ext);
  const obs::MetricsSnapshot s = reg.snapshot();
  EXPECT_EQ(s.counter_value("c"), 4u);
  EXPECT_EQ(s.gauge_value("g"), 9);
  ASSERT_NE(s.find("h"), nullptr);
  EXPECT_EQ(s.find("h")->count, 1u);
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

TEST(Spans, NestedScopedSpansRecordTreeAndTimes) {
  sim::Simulator sim(1);
  obs::SpanRecorder rec(sim);
  sim.spawn([](sim::Simulator& s, obs::SpanRecorder& r) -> sim::Co<void> {
    obs::ScopedSpan outer(&r, "outer");
    co_await s.sleep(5_ms);
    {
      obs::ScopedSpan inner(&r, "inner", outer.ctx());
      co_await s.sleep(2_ms);
    }
    co_await s.sleep(1_ms);
  }(sim, rec));
  sim.run();
  ASSERT_EQ(rec.spans().size(), 2u);
  const obs::SpanRecord& outer = rec.spans()[0];
  const obs::SpanRecord& inner = rec.spans()[1];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(outer.trace, outer.id);  // a root starts its own trace
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(inner.trace, outer.id);
  EXPECT_EQ(inner.start, 5_ms);
  EXPECT_EQ(inner.end, 7_ms);
  EXPECT_EQ(outer.end, 8_ms);
}

TEST(Spans, NullRecorderIsANoOp) {
  obs::ScopedSpan s(nullptr, "ghost");
  EXPECT_EQ(s.id(), 0u);
}

TEST(Spans, CapCountsDropsInsteadOfGrowing) {
  sim::Simulator sim(1);
  obs::SpanRecorder rec(sim, /*max_spans=*/2);
  EXPECT_NE(rec.begin("a"), 0u);
  EXPECT_NE(rec.begin("b"), 0u);
  EXPECT_EQ(rec.begin("c"), 0u);
  EXPECT_EQ(rec.spans().size(), 2u);
  EXPECT_EQ(rec.dropped(), 1u);
}

TEST(Spans, TsvRoundTripAndStrictParser) {
  sim::Simulator sim(1);
  obs::SpanRecorder rec(sim);
  const std::uint64_t a = rec.begin("alpha");
  rec.begin("beta\twith\ttabs", {a, a});  // flattened, not rejected
  rec.end(a);
  rec.close_open();
  std::vector<obs::SpanRecord> back;
  std::string err;
  ASSERT_TRUE(obs::SpanRecorder::from_tsv(rec.to_tsv(), back, &err)) << err;
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], rec.spans()[0]);
  EXPECT_EQ(back[1].name, "beta with tabs");
  EXPECT_EQ(back[1].trace, a);

  EXPECT_FALSE(obs::SpanRecorder::from_tsv("", back, &err));
  EXPECT_FALSE(obs::SpanRecorder::from_tsv("# wrong header\n", back, &err));
  EXPECT_FALSE(obs::SpanRecorder::from_tsv(
      "# dodo spans v2 2\n1\t0\t1\t0\t1\tonly-one\n", back, &err));
  EXPECT_FALSE(obs::SpanRecorder::from_tsv(
      "# dodo spans v2 1\n1\t0\t1\tx\t1\tbad-start\n", back, &err));
}

TEST(Spans, OrphanParentContextIsRejectedAndCounted) {
  sim::Simulator sim(1);
  obs::SpanRecorder rec(sim);
  // A parent id that was never allocated must not produce a dangling edge:
  // the context is discarded and the span becomes a root.
  const std::uint64_t id = rec.begin("suspicious", {999, 998});
  ASSERT_NE(id, 0u);
  EXPECT_EQ(rec.orphans_rejected(), 1u);
  EXPECT_EQ(rec.spans()[0].parent, 0u);
  EXPECT_EQ(rec.spans()[0].trace, id);
}

TEST(Spans, CloseOpenStampsQuiesceTime) {
  sim::Simulator sim(1);
  obs::SpanRecorder rec(sim);
  const std::uint64_t a = rec.begin("left-open");
  sim.spawn([](sim::Simulator& s) -> sim::Co<void> {
    co_await s.sleep(3_ms);
  }(sim));
  sim.run();
  EXPECT_EQ(rec.open_count(), 1u);
  rec.close_open();
  EXPECT_EQ(rec.open_count(), 0u);
  EXPECT_EQ(rec.spans()[0].id, a);
  EXPECT_EQ(rec.spans()[0].end, 3_ms);  // no end=-1 rows after quiesce
}

// ---------------------------------------------------------------------------
// Cluster-level: determinism and the kStats scrape path
// ---------------------------------------------------------------------------

cluster::ClusterConfig small_config(std::uint64_t seed) {
  cluster::ClusterConfig cfg;
  cfg.imd_hosts = 3;
  cfg.imd_pool = 4_MiB;
  cfg.local_cache = 256_KiB;
  cfg.page_cache_dodo = 128_KiB;
  cfg.seed = seed;
  return cfg;
}

constexpr Bytes64 kData = 1_MiB;
constexpr Bytes64 kBlk = 32_KiB;

sim::Co<void> scan(cluster::Cluster&, apps::BlockIo& io, int sweeps) {
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(kBlk));
  for (int s = 0; s < sweeps; ++s) {
    for (Bytes64 off = 0; off < kData; off += kBlk) {
      co_await io.read(off, buf.data(), kBlk);
    }
  }
}

std::string run_and_export(std::uint64_t seed) {
  cluster::Cluster c(small_config(seed));
  const int fd = c.create_dataset("data", kData);
  apps::DodoBlockIo io(*c.manager(), fd, kData, kBlk);
  c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
    co_await scan(cl, io, 3);
    co_await io.finish(false);
  });
  return c.metrics_snapshot().to_json();
}

TEST(ClusterMetrics, SameSeedExportsAreByteIdentical) {
  const std::string a = run_and_export(7);
  const std::string b = run_and_export(7);
  EXPECT_EQ(a, b);
  // A different seed still produces the same metric *names* (the schema is
  // workload-independent), even if values differ.
  obs::MetricsSnapshot sa;
  obs::MetricsSnapshot sb;
  ASSERT_TRUE(obs::MetricsSnapshot::from_json(a, sa));
  ASSERT_TRUE(obs::MetricsSnapshot::from_json(run_and_export(8), sb));
  ASSERT_EQ(sa.size(), sb.size());
}

TEST(ClusterMetrics, EveryComponentExportsItsCore) {
  cluster::Cluster c(small_config(3));
  const int fd = c.create_dataset("data", kData);
  apps::DodoBlockIo io(*c.manager(), fd, kData, kBlk);
  c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
    co_await scan(cl, io, 2);
    co_await io.finish(false);
  });
  const obs::MetricsSnapshot s = c.metrics_snapshot();
  // The workload moved real bytes, so the core counters are all live.
  EXPECT_GT(s.counter_value("client.mreads_total"), 0u);
  EXPECT_GT(s.counter_value("imd.reads_served"), 0u);
  EXPECT_GT(s.counter_value("cmd.mopens"), 0u);
  EXPECT_GT(s.counter_value("rmd.recruitments"), 0u);
  EXPECT_GT(s.counter_value("manage.remote_fills"), 0u);
  EXPECT_GT(s.counter_value("net.datagrams_delivered"), 0u);
  EXPECT_GT(s.counter_value("imd.bulk.chunks_sent"), 0u);
  // Conservation: every admitted mread resolved exactly one way.
  EXPECT_EQ(s.counter_value("client.mreads_total"),
            s.counter_value("client.remote_hits") +
                s.counter_value("client.mreads_degraded"));
  // Latency histograms saw every remote fill.
  const obs::MetricValue* lat = s.find("client.mread_latency");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, s.counter_value("client.remote_hits"));
}

sim::Co<void> scrape_loop(cluster::Cluster& cl, const bool& running,
                          std::vector<obs::MetricsSnapshot>& out,
                          sim::WaitGroup& wg) {
  while (running) {
    co_await cl.sim().sleep(50_ms);
    out.push_back(co_await cl.cmd().scrape_cluster());
  }
  wg.done();
}

TEST(ClusterMetrics, KStatsScrapeUnderLoadMatchesQuiesce) {
  cluster::Cluster c(small_config(11));
  const int fd = c.create_dataset("data", kData);
  apps::DodoBlockIo io(*c.manager(), fd, kData, kBlk);
  std::vector<obs::MetricsSnapshot> scrapes;
  c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
    bool running = true;
    sim::WaitGroup wg(cl.sim());
    wg.add(1);
    cl.sim().spawn(scrape_loop(cl, running, scrapes, wg));
    co_await scan(cl, io, 3);
    co_await io.finish(false);
    running = false;
    co_await wg.wait();
    co_await cl.sim().sleep(100_ms);
    scrapes.push_back(co_await cl.cmd().scrape_cluster());
  });
  ASSERT_GE(scrapes.size(), 2u);
  // Mid-load scrapes are internally consistent (monotonic between scrapes).
  for (std::size_t i = 1; i < scrapes.size(); ++i) {
    EXPECT_GE(scrapes[i].counter_value("imd.reads_served"),
              scrapes[i - 1].counter_value("imd.reads_served"))
        << "scrape " << i;
  }
  // The quiesce scrape (over the wire, via every rmd's kStats endpoint)
  // agrees exactly with the in-process snapshot on workload counters.
  const obs::MetricsSnapshot local = c.metrics_snapshot();
  const obs::MetricsSnapshot& wire = scrapes.back();
  for (const char* name : {"imd.reads_served", "imd.writes_served",
                           "imd.allocs", "imd.bytes_read"}) {
    EXPECT_EQ(wire.counter_value(name), local.counter_value(name)) << name;
  }
  EXPECT_GT(wire.counter_value("cmd.stats_scrapes"), 0u);
  EXPECT_EQ(wire.counter_value("cmd.stats_scrape_failures"), 0u);
}

TEST(ClusterMetrics, KStatsScrapeSurvivesMidShardCrash) {
  // A scrape racing a cmd-shard crash must not wedge or corrupt: the dead
  // shard's partition drops out (its scrapes fail), the healthy shard's
  // rows stay exact, and the failure is counted — not silent.
  cluster::ClusterConfig cfg = small_config(19);
  cfg.cmd_shards = 2;
  cluster::Cluster c(cfg);
  const int fd = c.create_dataset("data", kData);
  apps::DodoBlockIo io(*c.manager(), fd, kData, kBlk);
  obs::MetricsSnapshot during;
  c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
    co_await scan(cl, io, 2);
    cl.crash_cmd_shard(1);
    // The shard is down mid-scrape-window: the fan-out must still return.
    during = co_await cl.scrape_cluster();
    co_await io.finish(false);
  });
  // The surviving shard still served its partition's stats.
  EXPECT_GT(during.counter_value("cmd.stats_scrapes"), 0u);
  EXPECT_GT(during.counter_value("imd.reads_served"), 0u);
  // The crashed shard's sweep shows up as counted scrape failures on its
  // own snapshot (served in-process even while its network is cut).
  EXPECT_GT(during.counter_value("cmd.stats_scrape_failures"), 0u);
}

TEST(ClusterSpans, WorkloadRecordsConsistentMergedTree) {
  cluster::ClusterConfig cfg = small_config(5);
  cfg.record_spans = true;
  cluster::Cluster c(cfg);
  const int fd = c.create_dataset("data", kData);
  apps::DodoBlockIo io(*c.manager(), fd, kData, kBlk);
  c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
    co_await scan(cl, io, 2);
    co_await io.finish(false);
  });
  ASSERT_NE(c.traces(), nullptr);
  const std::vector<obs::MergedSpan> spans = c.merged_spans();
  ASSERT_FALSE(spans.empty());
  bool saw_child = false;
  bool saw_cross_process = false;
  for (const obs::MergedSpan& m : spans) {
    EXPECT_LT(m.span.parent, m.span.id);  // parents allocate first
    EXPECT_GE(m.span.end, m.span.start);  // quiesce closed everything
    if (m.span.parent != 0) saw_child = true;
  }
  // Cross-process causality: some span's parent lives on another track
  // (the wire carried the context there).
  for (const obs::MergedSpan& m : spans) {
    if (m.span.parent == 0) continue;
    for (const obs::MergedSpan& p : spans) {
      if (p.span.id != m.span.parent) continue;
      if (p.host != m.host || p.daemon != m.daemon) saw_cross_process = true;
      break;
    }
  }
  EXPECT_TRUE(saw_child);          // cread -> fault_in nesting happened
  EXPECT_TRUE(saw_cross_process);  // client -> imd propagation happened
  // And the whole merged tree survives a TSV round-trip.
  std::vector<obs::MergedSpan> back;
  std::string err;
  ASSERT_TRUE(obs::TraceDomain::from_tsv(c.trace_tsv(), back, &err)) << err;
  EXPECT_EQ(back.size(), spans.size());
  EXPECT_EQ(back, spans);
}

TEST(ClusterSpans, SegmentAttributionSumsExactlyToEndToEnd) {
  cluster::ClusterConfig cfg = small_config(6);
  cfg.record_spans = true;
  cluster::Cluster c(cfg);
  const int fd = c.create_dataset("data", kData);
  apps::DodoBlockIo io(*c.manager(), fd, kData, kBlk);
  c.run_app([&](cluster::Cluster& cl) -> sim::Co<void> {
    co_await scan(cl, io, 2);
    co_await io.finish(false);
  });
  const std::vector<obs::TraceSummary> traces =
      obs::analyze_traces(c.merged_spans());
  ASSERT_FALSE(traces.empty());
  bool saw_bulk = false;
  for (const obs::TraceSummary& t : traces) {
    // The analyzer's core invariant: the per-segment attribution tiles the
    // root span exactly — no double counting, no leaked time.
    EXPECT_EQ(t.segments.total(), t.end - t.start) << t.root_name;
    if (t.segments[obs::Segment::kBulk] > 0) saw_bulk = true;
  }
  EXPECT_TRUE(saw_bulk);  // remote fills attribute time to bulk transfer
}

}  // namespace
}  // namespace dodo
