// Sharded cmd control plane (DESIGN.md §13): deterministic region->shard
// routing, the shard_count=1 == paper-layout identity, disjoint per-shard
// imd-pool partitions, per-shard scrub independence, stripe/replica
// placement staying inside the owning shard's partition, and
// byte-deterministic cluster-wide metric merges. Labeled `shard`
// (ctest -L shard / the shard and shard-asan test presets).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "core/cmd.hpp"
#include "core/wire.hpp"
#include "runtime/dodo_client.hpp"

namespace dodo {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using core::RegionKey;
using sim::Co;

ClusterConfig shard_config(int shards, int hosts, std::uint64_t seed = 7) {
  ClusterConfig cfg;
  cfg.imd_hosts = hosts;
  cfg.cmd_shards = shards;
  cfg.imd_pool = 8_MiB;
  cfg.local_cache = 1_MiB;
  cfg.page_cache_dodo = 256_KiB;
  cfg.materialize = false;  // phantom data: these tests check accounting
  cfg.seed = seed;
  return cfg;
}

/// Deterministic mixed workload: open `n` regions at consecutive offsets
/// (their keys spread across every shard), write and read half, close every
/// third, reopen it, then sleep past one keep-alive interval.
Co<void> churn(Cluster& c, int n, Bytes64 region) {
  auto& d = *c.dodo();
  const int fd = c.create_dataset("data", static_cast<Bytes64>(n) * region);
  std::vector<int> rds;
  for (int i = 0; i < n; ++i) {
    const int rd =
        co_await d.mopen(region, fd, static_cast<Bytes64>(i) * region);
    EXPECT_GE(rd, 0) << "mopen " << i;
    if (rd < 0) co_return;
    rds.push_back(rd);
  }
  for (int i = 0; i < n; i += 2) {
    EXPECT_EQ(co_await d.mwrite(rds[i], 0, nullptr, region), region);
    EXPECT_EQ(co_await d.mread(rds[i], 0, nullptr, region), region);
  }
  for (int i = 0; i < n; i += 3) {
    EXPECT_EQ(co_await d.mclose(rds[i]), 0);
    const int rd =
        co_await d.mopen(region, fd, static_cast<Bytes64>(i) * region);
    EXPECT_GE(rd, 0);
    rds[i] = rd;
  }
  co_await c.sim().sleep(3 * kSecond);
}

// ---------------------------------------------------------------------------
// Routing function
// ---------------------------------------------------------------------------

TEST(ShardMap, GoldenAssignments) {
  // Pinned values: a change here silently reshards every deployed directory,
  // so it must be a deliberate, test-breaking decision.
  const RegionKey a{1, 0, 1};
  const RegionKey b{1, 65536, 1};
  const RegionKey c{2, 0, 7};
  const RegionKey d{3, 123456, 42};
  EXPECT_EQ(core::shard_of_key(a, 2), 1u);
  EXPECT_EQ(core::shard_of_key(a, 3), 2u);
  EXPECT_EQ(core::shard_of_key(a, 4), 1u);
  EXPECT_EQ(core::shard_of_key(a, 8), 1u);
  EXPECT_EQ(core::shard_of_key(b, 2), 0u);
  EXPECT_EQ(core::shard_of_key(b, 4), 2u);
  EXPECT_EQ(core::shard_of_key(b, 8), 6u);
  EXPECT_EQ(core::shard_of_key(c, 4), 3u);
  EXPECT_EQ(core::shard_of_key(d, 8), 5u);
}

TEST(ShardMap, SingleShardAlwaysZero) {
  for (std::int64_t off = 0; off < 64; ++off) {
    const RegionKey k{9, off * 4096, 3};
    EXPECT_EQ(core::shard_of_key(k, 0), 0u);
    EXPECT_EQ(core::shard_of_key(k, 1), 0u);
  }
}

TEST(ShardMap, SpreadsConsecutiveOffsets) {
  // The fmix avalanche must keep hash-mod from striding: 4096 consecutive
  // region offsets over 8 shards land within 2x of a uniform split.
  std::vector<int> count(8, 0);
  for (std::int64_t i = 0; i < 4096; ++i) {
    ++count[core::shard_of_key(RegionKey{1, i * 65536, 1}, 8)];
  }
  for (int s = 0; s < 8; ++s) {
    EXPECT_GT(count[s], 4096 / 16) << "shard " << s << " starved";
    EXPECT_LT(count[s], 4096 / 4) << "shard " << s << " overloaded";
  }
}

// ---------------------------------------------------------------------------
// shard_count = 1 is the paper layout
// ---------------------------------------------------------------------------

TEST(ShardCluster, SingleShardIsLegacyLayout) {
  Cluster c(shard_config(1, 4));
  EXPECT_EQ(c.shard_count(), 1);
  EXPECT_EQ(c.shard_node(0), 0u);           // dedicated manager node
  EXPECT_EQ(&c.cmd(), &c.cmd(0));           // legacy accessor is shard 0
  for (int h = 0; h < 4; ++h) EXPECT_EQ(c.shard_of_host(h), 0);
}

TEST(ShardCluster, SingleShardMetricsDeterministic) {
  // Explicit cmd_shards=1 must take the same code path as the default: two
  // fresh same-seed clusters produce byte-identical metric exports.
  std::string json[2];
  for (int run = 0; run < 2; ++run) {
    ClusterConfig cfg = shard_config(1, 4);
    if (run == 1) cfg.cmd_shards = 1;  // explicit vs default
    Cluster c(cfg);
    c.run_app([](Cluster& cl) -> Co<void> { co_await churn(cl, 12, 64_KiB); });
    json[run] = c.metrics_snapshot().to_json();
  }
  EXPECT_EQ(json[0], json[1]);
}

TEST(ShardCluster, MultiShardMetricsDeterministic) {
  std::string json[2];
  for (int run = 0; run < 2; ++run) {
    Cluster c(shard_config(3, 6));
    c.run_app([](Cluster& cl) -> Co<void> { co_await churn(cl, 18, 64_KiB); });
    json[run] = c.metrics_snapshot().to_json();
  }
  EXPECT_EQ(json[0], json[1]);
  // Multi-shard snapshots carry per-shard sections alongside the totals.
  EXPECT_NE(json[0].find("shard0.cmd.mopens"), std::string::npos);
  EXPECT_NE(json[0].find("shard2.cmd.mopens"), std::string::npos);
}

TEST(ShardCluster, ScrapeClusterDeterministic) {
  // The over-the-wire merge fans out to every shard concurrently; sorting
  // the per-shard parts before merging keeps the result independent of
  // completion order — two same-seed runs export identical bytes.
  std::string json[2];
  for (int run = 0; run < 2; ++run) {
    Cluster c(shard_config(3, 6));
    c.run_app([&json, run](Cluster& cl) -> Co<void> {
      co_await churn(cl, 18, 64_KiB);
      obs::MetricsSnapshot snap = co_await cl.scrape_cluster();
      json[run] = snap.to_json();
    });
  }
  EXPECT_EQ(json[0], json[1]);
  EXPECT_NE(json[0].find("cmd.mopens"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Partition invariants
// ---------------------------------------------------------------------------

TEST(ShardCluster, ImdPartitionsAreDisjoint) {
  Cluster c(shard_config(3, 7));
  c.run_app([](Cluster& cl) -> Co<void> { co_await churn(cl, 21, 64_KiB); });

  std::set<net::NodeId> seen;
  std::size_t total = 0;
  for (int s = 0; s < c.shard_count(); ++s) {
    for (const auto& [node, epoch] : c.cmd(s).iwd_epochs()) {
      EXPECT_TRUE(seen.insert(node).second)
          << "node " << node << " registered with more than one shard";
      const int host = static_cast<int>(node) - 2;
      EXPECT_EQ(c.shard_of_host(host), s)
          << "host " << host << " in the wrong shard's directory";
      ++total;
    }
  }
  EXPECT_EQ(total, 7u);  // union covers every harvested host exactly once
}

TEST(ShardCluster, RegionsLiveInOwningShardPartition) {
  Cluster c(shard_config(3, 7));
  c.run_app([](Cluster& cl) -> Co<void> { co_await churn(cl, 21, 64_KiB); });

  std::size_t regions = 0;
  for (int s = 0; s < c.shard_count(); ++s) {
    for (const auto& [key, loc] : c.cmd(s).rd_snapshot()) {
      EXPECT_EQ(core::shard_of_key(key, 3), static_cast<std::uint32_t>(s))
          << "key routed to the wrong shard's directory";
      const int host = static_cast<int>(loc.host) - 2;
      EXPECT_EQ(c.shard_of_host(host), s)
          << "region placed outside the owning shard's partition";
      ++regions;
    }
  }
  EXPECT_GT(regions, 0u);
}

TEST(ShardCluster, StripeAndReplicaComposeWithinShard) {
  ClusterConfig cfg = shard_config(2, 6);
  cfg.cmd.stripe_width = 2;
  cfg.cmd.stripe_min_fragment = 64_KiB;
  cfg.cmd.replica_count = 2;
  Cluster c(cfg);
  c.run_app([](Cluster& cl) -> Co<void> {
    // Large regions so the stripe policy actually splits them.
    co_await churn(cl, 8, 256_KiB);
  });

  for (int s = 0; s < c.shard_count(); ++s) {
    const obs::MetricsSnapshot snap = c.cmd(s).metrics_snapshot();
    const std::string json = snap.to_json();
    // Each shard striped and replicated on its own: placement never needed
    // (or touched) another shard's partition.
    EXPECT_NE(json.find("\"cmd.striped_regions\""), std::string::npos);
    for (const auto& [key, loc] : c.cmd(s).rd_snapshot()) {
      const int host = static_cast<int>(loc.host) - 2;
      EXPECT_EQ(c.shard_of_host(host), s);
    }
  }
  // Composition happened at all (cluster-wide, the workload is big enough).
  const std::string all = c.metrics_snapshot().to_json();
  EXPECT_NE(all.find("cmd.striped_regions"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Per-shard machinery independence
// ---------------------------------------------------------------------------

TEST(ShardCluster, ScrubIndependenceAcrossShards) {
  // Crashing the only host of shard 0's partition strands that shard's
  // frees in its pending queue; shard 1's scrub machinery must stay empty.
  Cluster c(shard_config(2, 2));
  c.run_app([](Cluster& cl) -> Co<void> {
    auto& d = *cl.dodo();
    const int fd = cl.create_dataset("data", 32 * 64_KiB);
    std::vector<int> shard0_rds;
    std::vector<int> shard1_rds;
    const std::uint32_t inode = cl.fs().inode_of(fd);
    const std::uint32_t client = d.client_id();
    for (int i = 0; i < 32; ++i) {
      const Bytes64 off = static_cast<Bytes64>(i) * 64_KiB;
      const int rd = co_await d.mopen(64_KiB, fd, off);
      EXPECT_GE(rd, 0);
      if (rd < 0) co_return;
      const RegionKey key{inode, off, client};
      (core::shard_of_key(key, 2) == 0 ? shard0_rds : shard1_rds)
          .push_back(rd);
    }
    EXPECT_FALSE(shard0_rds.empty());
    EXPECT_FALSE(shard1_rds.empty());
    cl.crash_host(0);  // shard 0's whole partition (host 0 of 2)
    for (const int rd : shard0_rds) co_await d.mclose(rd);
    for (const int rd : shard1_rds) EXPECT_EQ(co_await d.mclose(rd), 0);
    co_await cl.sim().sleep(3 * kSecond);
  });
  EXPECT_GT(c.cmd(0).pending_free_count(), 0u)
      << "shard 0 should be retrying frees against its crashed partition";
  EXPECT_EQ(c.cmd(1).pending_free_count(), 0u)
      << "shard 1's scrub queue polluted by shard 0's failure";
  EXPECT_EQ(c.cmd(1).region_count(), 0u);
}

}  // namespace
}  // namespace dodo
