// Tests for the Figure-6 usocket library over the simulated U-Net.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "fuzz/permute.hpp"
#include "sim/simulator.hpp"
#include "usock/usocket.hpp"

namespace dodo::usock {
namespace {

using sim::Co;
using sim::Simulator;

TEST(Usock, AtonNtoaRoundTrip) {
  const macaddr_t mac = u_aton("02:0d:0d:00:00:2a");
  EXPECT_EQ(mac[0], 0x02);
  EXPECT_EQ(mac[5], 0x2a);
  char buf[18];
  EXPECT_STREQ(u_ntoa(mac, buf), "02:0d:0d:00:00:2a");
  EXPECT_EQ(u_aton("garbage"), macaddr_t{});
  EXPECT_EQ(u_aton(nullptr), macaddr_t{});
}

TEST(Usock, MacNodeMapping) {
  const auto mac = USocketStack::mac_of(42);
  const auto node = USocketStack::node_of(mac);
  ASSERT_TRUE(node.has_value());
  EXPECT_EQ(*node, 42u);
  EXPECT_FALSE(USocketStack::node_of(macaddr_t{1, 2, 3, 4, 5, 6}).has_value());
}

struct Fixture {
  Simulator sim{41};
  net::Network net{sim, net::NetParams::unet(), 4};
  USocketStack a{net, 1};
  USocketStack b{net, 2};
};

TEST(Usock, SendRecvRoundTrip) {
  Fixture fx;
  bool done = false;
  fx.sim.spawn([](Fixture& f, bool& ok) -> Co<void> {
    const int srv = f.b.u_socket(8192, 8192);
    const macaddr_t self = f.b.local_mac();
    EXPECT_EQ(f.b.u_bind(srv, &self, 1), 0);

    const int cli = f.a.u_socket(8192, 8192);
    EXPECT_EQ(f.a.u_connect(cli, USocketStack::mac_of(2)), 0);
    const char msg[] = "hello unet";
    EXPECT_EQ(f.a.u_send(cli, msg, sizeof(msg)),
              static_cast<int>(sizeof(msg)));

    char buf[64] = {};
    macaddr_t from{};
    const int n = co_await f.b.u_recv(srv, buf, sizeof(buf), &from, 1000);
    EXPECT_EQ(n, static_cast<int>(sizeof(msg)));
    EXPECT_STREQ(buf, "hello unet");
    EXPECT_EQ(from, USocketStack::mac_of(1));
    ok = true;
  }(fx, done));
  fx.sim.run(10_s);
  EXPECT_TRUE(done);
}

TEST(Usock, IovecGatherScatter) {
  Fixture fx;
  bool done = false;
  fx.sim.spawn([](Fixture& f, bool& ok) -> Co<void> {
    const int srv = f.b.u_socket(0, 0);
    const macaddr_t self = f.b.local_mac();
    EXPECT_EQ(f.b.u_bind(srv, &self, 1), 0);
    const int cli = f.a.u_socket(0, 0);
    f.a.u_connect(cli, USocketStack::mac_of(2));

    char p1[] = "abc";
    char p2[] = "defgh";
    u_iovec out[2] = {{p1, 3}, {p2, 5}};
    EXPECT_EQ(f.a.u_send_iovec(cli, out, 2), 8);

    char q1[4] = {};
    char q2[16] = {};
    u_iovec in[2] = {{q1, 4}, {q2, 16}};
    int iovc = 2;
    const int n = co_await f.b.u_recv_iovec(srv, in, &iovc, nullptr, 1000);
    EXPECT_EQ(n, 8);
    EXPECT_EQ(iovc, 2);
    EXPECT_EQ(std::string(q1, 4), "abcd");
    EXPECT_EQ(std::string(q2, 4), "efgh");
    ok = true;
  }(fx, done));
  fx.sim.run(10_s);
  EXPECT_TRUE(done);
}

TEST(Usock, RecvTimesOut) {
  Fixture fx;
  bool done = false;
  fx.sim.spawn([](Fixture& f, bool& ok) -> Co<void> {
    const int srv = f.b.u_socket(0, 0);
    const macaddr_t self = f.b.local_mac();
    f.b.u_bind(srv, &self, 1);
    char buf[8];
    const SimTime t0 = f.sim.now();
    EXPECT_EQ(co_await f.b.u_recv(srv, buf, sizeof(buf), nullptr, 50), -1);
    EXPECT_EQ(f.sim.now() - t0, 50_ms);
    ok = true;
  }(fx, done));
  fx.sim.run(10_s);
  EXPECT_TRUE(done);
}

// The simulated U-Net is FIFO per sender: whatever adversarial order the
// application *sends* in — here a fuzz-permuter plan with bounded reorder,
// duplicates, and drops relative to the nominal sequence — the receiver
// must observe exactly that sequence, element for element. This pins the
// usocket layer's no-reorder/no-invention guarantee that the RPC reply
// cache and bulk protocol upstream rely on.
TEST(Usock, PreservesAdversarialSendSequence) {
  Fixture fx;
  bool done = false;
  fx.sim.spawn([](Fixture& f, bool& ok) -> Co<void> {
    const int srv = f.b.u_socket(1 << 16, 1 << 16);
    const macaddr_t self = f.b.local_mac();
    EXPECT_EQ(f.b.u_bind(srv, &self, 1), 0);
    const int cli = f.a.u_socket(1 << 16, 1 << 16);
    EXPECT_EQ(f.a.u_connect(cli, USocketStack::mac_of(2)), 0);

    constexpr std::size_t kMsgs = 40;
    const auto plan =
        fuzz::permute_deliveries(kMsgs, 5, {0.15, 0.15, 3});
    EXPECT_FALSE(plan.empty());

    for (std::size_t idx : plan) {
      const std::uint32_t tag = static_cast<std::uint32_t>(idx);
      EXPECT_EQ(f.a.u_send(cli, &tag, sizeof(tag)),
                static_cast<int>(sizeof(tag)));
    }

    for (std::size_t i = 0; i < plan.size(); ++i) {
      std::uint32_t tag = 0;
      macaddr_t from{};
      const int n =
          co_await f.b.u_recv(srv, &tag, sizeof(tag), &from, 2000);
      EXPECT_EQ(n, static_cast<int>(sizeof(tag))) << "frame " << i;
      if (n != static_cast<int>(sizeof(tag))) co_return;
      EXPECT_EQ(tag, static_cast<std::uint32_t>(plan[i])) << "frame " << i;
      EXPECT_EQ(from, USocketStack::mac_of(1));
    }
    // A dropped index was never sent, so nothing further may arrive.
    std::uint32_t extra = 0;
    EXPECT_EQ(co_await f.b.u_recv(srv, &extra, sizeof(extra), nullptr, 50),
              -1);
    ok = true;
  }(fx, done));
  fx.sim.run(10_s);
  EXPECT_TRUE(done);
}

// Duplicate delivery is legal datagram behavior; the stack must hand both
// copies up unchanged rather than deduplicating or corrupting.
TEST(Usock, DeliversDuplicatesVerbatim) {
  Fixture fx;
  bool done = false;
  fx.sim.spawn([](Fixture& f, bool& ok) -> Co<void> {
    const int srv = f.b.u_socket(0, 0);
    const macaddr_t self = f.b.local_mac();
    EXPECT_EQ(f.b.u_bind(srv, &self, 1), 0);
    const int cli = f.a.u_socket(0, 0);
    EXPECT_EQ(f.a.u_connect(cli, USocketStack::mac_of(2)), 0);

    const char msg[] = "dup me";
    EXPECT_EQ(f.a.u_send(cli, msg, sizeof(msg)),
              static_cast<int>(sizeof(msg)));
    EXPECT_EQ(f.a.u_send(cli, msg, sizeof(msg)),
              static_cast<int>(sizeof(msg)));
    for (int copy = 0; copy < 2; ++copy) {
      char buf[16] = {};
      const int n = co_await f.b.u_recv(srv, buf, sizeof(buf), nullptr, 1000);
      EXPECT_EQ(n, static_cast<int>(sizeof(msg))) << "copy " << copy;
      if (n != static_cast<int>(sizeof(msg))) co_return;
      EXPECT_STREQ(buf, "dup me");
    }
    ok = true;
  }(fx, done));
  fx.sim.run(10_s);
  EXPECT_TRUE(done);
}

TEST(Usock, ErrorPaths) {
  Fixture fx;
  // bad fd
  EXPECT_EQ(fx.a.u_close(99), -1);
  EXPECT_EQ(fx.a.u_send(99, "x", 1), -1);
  // bind to someone else's address
  const int s = fx.a.u_socket(0, 0);
  const macaddr_t other = USocketStack::mac_of(2);
  EXPECT_EQ(fx.a.u_bind(s, &other, 1), -1);
  // send without connect
  EXPECT_EQ(fx.a.u_send(s, "x", 1), -1);
  // oversize frame (U-Net MTU)
  const int c = fx.a.u_socket(0, 0);
  fx.a.u_connect(c, USocketStack::mac_of(2));
  std::vector<char> big(4096, 'x');
  EXPECT_EQ(fx.a.u_send(c, big.data(), big.size()), -1);
  // close then use
  EXPECT_EQ(fx.a.u_close(s), 0);
  EXPECT_EQ(fx.a.u_send(s, "x", 1), -1);
}

}  // namespace
}  // namespace dodo::usock
