// Zero-copy batched data path (DESIGN.md §16): the submission/completion
// ring over libdodo, mread coalescing behind it, and the scatter-gather
// fan-in underneath. These tests pin the ring contract (FIFO completions
// for a coalesced batch, backpressure at depth, retry-safe completion
// around mclose), the window=0 wire byte-identity guarantee, the
// fragment-boundary degradation rule (only the byte range whose host died
// goes to disk), and the PR-5 use-after-suspension regression (batch
// descriptors copy Entry fields before the first co_await, so an eviction
// mid-batch cannot leave a dangling pointer).
// Labeled `ring` (ctest -L ring / the ring test preset).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "core/cmd.hpp"
#include "core/imd.hpp"
#include "disk/filesystem.hpp"
#include "obs/span.hpp"
#include "runtime/dodo_client.hpp"
#include "runtime/ring.hpp"
#include "sim/simulator.hpp"

namespace dodo::runtime {
namespace {

using sim::Co;
using sim::Simulator;

// Node 0: cmd. Node 1: application. Nodes 2..1+hosts: imds.
struct RingFixture {
  Simulator sim{47};
  net::Network net;
  obs::SpanRecorder spans;
  core::CentralManager cmd;
  disk::SimFilesystem fs;
  std::vector<std::unique_ptr<core::IdleMemoryDaemon>> imds;
  DodoClient client;
  int fd = -1;

  explicit RingFixture(int hosts, core::CmdParams cp,
                       ClientParams clp = ClientParams{})
      : net(sim, net::NetParams::unet(),
            static_cast<std::size_t>(hosts) + 2),
        spans(sim),
        cmd(sim, net, 0, cp),
        fs(sim),
        client(sim, net, 1, net::Endpoint{0, core::kCmdPort}, fs,
               with_spans(&spans, clp)) {
    cmd.start();
    for (int i = 0; i < hosts; ++i) {
      core::ImdParams p;
      p.pool_bytes = 16_MiB;
      imds.push_back(std::make_unique<core::IdleMemoryDaemon>(
          sim, net, static_cast<net::NodeId>(i + 2), 1,
          net::Endpoint{0, core::kCmdPort}, p));
      imds.back()->start();
    }
    fs.create("backing", 8_MiB);
    fd = fs.open("backing", disk::OpenMode::kReadWrite);
    client.start();
  }

  static core::CmdParams plain(int width = 1) {
    core::CmdParams p;
    p.stripe_width = width;
    p.stripe_min_fragment = 4_KiB;
    return p;
  }

  static ClientParams coalescing(Bytes64 window, Duration timer) {
    ClientParams p;
    p.coalesce_window_bytes = window;
    p.coalesce_window = timer;
    return p;
  }

  static ClientParams with_spans(obs::SpanRecorder* rec, ClientParams p) {
    p.spans = rec;
    return p;
  }

  template <typename F>
  void run(F&& body, SimTime limit = 300_s) {
    bool finished = false;
    sim.spawn([](RingFixture& f, F fn, bool& done) -> Co<void> {
      co_await f.sim.sleep(5_ms);  // let daemons register
      co_await fn(f);
      done = true;
    }(*this, std::forward<F>(body), finished));
    sim.run(limit);
    EXPECT_TRUE(finished) << "test body did not complete";
  }
};

net::Buf pattern(std::size_t n, std::uint8_t salt = 0) {
  net::Buf b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 131 + salt) & 0xff);
  }
  return b;
}

// FNV-1a over everything that makes a datagram a datagram: endpoints,
// header bytes, logical body size, and any materialized body bytes.
struct WireDigest {
  std::uint64_t h = 1469598103934665603ULL;
  std::uint64_t count = 0;

  void byte(std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (i * 8)));
  }
  void message(const net::Message& m) {
    ++count;
    u64(m.src.node);
    u64(m.src.port);
    u64(m.dst.node);
    u64(m.dst.port);
    for (std::uint8_t b : m.header) byte(b);
    u64(static_cast<std::uint64_t>(m.body_size));
    for (std::uint8_t b : m.body) byte(b);
  }
};

TEST(Ring, SubmissionCompletionOrdering) {
  // Six adjacent 4 KiB reads submitted through the ring coalesce into one
  // batch (one bulk transfer) and complete FIFO: CQE user_data comes back
  // in submission order, each op byte-exact against its own slice.
  RingFixture fx(1, RingFixture::plain(),
                 RingFixture::coalescing(64_KiB, 1 * kMillisecond));
  fx.run([](RingFixture& f) -> Co<void> {
    const Bytes64 rlen = 64_KiB;
    const int rd = co_await f.client.mopen(rlen, f.fd, 0);
    EXPECT_GE(rd, 0);
    net::Buf data = pattern(static_cast<std::size_t>(rlen), 3);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), rlen), rlen);

    DodoRing ring(f.sim, f.client, 16);
    net::Buf got(static_cast<std::size_t>(24_KiB), 0);
    for (std::uint64_t i = 0; i < 6; ++i) {
      Sqe sqe;
      sqe.op = RingOp::kRead;
      sqe.rd = rd;
      sqe.offset = static_cast<Bytes64>(i) * 4_KiB;
      sqe.len = 4_KiB;
      sqe.buf = got.data() + static_cast<std::ptrdiff_t>(i * 4096);
      sqe.user_data = i;
      EXPECT_TRUE(ring.try_submit(sqe));
    }
    EXPECT_EQ(ring.in_flight(), 6u);
    co_await ring.drain();
    EXPECT_EQ(ring.in_flight(), 0u);
    for (std::uint64_t i = 0; i < 6; ++i) {
      const auto cqe = ring.try_reap();
      EXPECT_TRUE(cqe.has_value());
      if (!cqe.has_value()) continue;
      EXPECT_EQ(cqe->user_data, i);  // FIFO: flush resolves ops in order
      EXPECT_EQ(cqe->n, 4_KiB);
      EXPECT_TRUE(cqe->filled);
      EXPECT_FALSE(cqe->degraded);
    }
    EXPECT_TRUE(std::equal(got.begin(), got.end(), data.begin()));
    EXPECT_EQ(co_await f.client.mclose(rd), 0);
  });
  const auto& m = fx.client.metrics();
  EXPECT_EQ(m.ring_submitted, 6u);
  EXPECT_EQ(m.ring_completed, 6u);
  EXPECT_EQ(m.ring_full_rejects, 0u);
  EXPECT_EQ(m.ring_peak_depth, 6u);
  EXPECT_EQ(m.batched_reads, 6u);
  EXPECT_EQ(m.coalesced_mreads, 6u);
  EXPECT_EQ(m.batch_flushes, 1u);  // one merged bulk transfer
  EXPECT_EQ(m.remote_hits, 6u);
  EXPECT_EQ(m.mreads_degraded, 0u);
  // The merged read landed scatter-gather, one segment per op.
  EXPECT_EQ(fx.client.bulk_stats().sg_recvs.value(), 1u);
}

TEST(Ring, RingFullBackpressure) {
  // Depth 2: the third try_submit is rejected (counted), while the
  // awaitable submit() parks until a completion frees a slot.
  RingFixture fx(1, RingFixture::plain());  // coalescing off: one op = one RPC
  fx.run([](RingFixture& f) -> Co<void> {
    const Bytes64 rlen = 64_KiB;
    const int rd = co_await f.client.mopen(rlen, f.fd, 0);
    EXPECT_GE(rd, 0);
    net::Buf data = pattern(static_cast<std::size_t>(rlen), 7);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), rlen), rlen);

    DodoRing ring(f.sim, f.client, 2);
    net::Buf got(static_cast<std::size_t>(12_KiB), 0);
    auto make = [&](std::uint64_t i) {
      Sqe sqe;
      sqe.op = RingOp::kRead;
      sqe.rd = rd;
      sqe.offset = static_cast<Bytes64>(i) * 4_KiB;
      sqe.len = 4_KiB;
      sqe.buf = got.data() + static_cast<std::ptrdiff_t>(i * 4096);
      sqe.user_data = i;
      return sqe;
    };
    EXPECT_TRUE(ring.try_submit(make(0)));
    EXPECT_TRUE(ring.try_submit(make(1)));
    EXPECT_FALSE(ring.try_submit(make(2)));  // full: depth 2
    EXPECT_EQ(f.client.metrics().ring_full_rejects, 1u);
    co_await ring.submit(make(2));  // parks, then lands once a slot frees
    co_await ring.drain();
    for (int i = 0; i < 3; ++i) {
      const auto cqe = ring.try_reap();
      EXPECT_TRUE(cqe.has_value());
      if (!cqe.has_value()) continue;
      EXPECT_EQ(cqe->n, 4_KiB);
    }
    EXPECT_TRUE(std::equal(got.begin(), got.end(), data.begin()));
    EXPECT_EQ(co_await f.client.mclose(rd), 0);
  });
  EXPECT_EQ(fx.client.metrics().ring_submitted, 3u);
  EXPECT_EQ(fx.client.metrics().ring_completed, 3u);
  EXPECT_LE(fx.client.metrics().ring_peak_depth, 2u);
}

TEST(Ring, CompletionAfterMcloseIsRetrySafe) {
  // Reads queued behind a long coalescing timer when mclose arrives: the
  // close barrier flushes and awaits the batch, so every queued op
  // completes with real bytes before the descriptor dies — and a
  // subsequent submit against the dead descriptor completes with n < 0
  // through the ring rather than wedging it.
  RingFixture fx(1, RingFixture::plain(),
                 RingFixture::coalescing(64_KiB, 50 * kMillisecond));
  fx.run([](RingFixture& f) -> Co<void> {
    const Bytes64 rlen = 64_KiB;
    const int rd = co_await f.client.mopen(rlen, f.fd, 0);
    EXPECT_GE(rd, 0);
    net::Buf data = pattern(static_cast<std::size_t>(rlen), 11);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), rlen), rlen);

    DodoRing ring(f.sim, f.client, 8);
    net::Buf got(static_cast<std::size_t>(8_KiB), 0);
    for (std::uint64_t i = 0; i < 2; ++i) {
      Sqe sqe;
      sqe.op = RingOp::kRead;
      sqe.rd = rd;
      sqe.offset = static_cast<Bytes64>(i) * 4_KiB;
      sqe.len = 4_KiB;
      sqe.buf = got.data() + static_cast<std::ptrdiff_t>(i * 4096);
      sqe.user_data = i;
      EXPECT_TRUE(ring.try_submit(sqe));
    }
    EXPECT_EQ(ring.in_flight(), 2u);  // parked on the 50ms window timer
    EXPECT_EQ(co_await f.client.mclose(rd), 0);  // barrier flushes first
    co_await ring.drain();
    for (std::uint64_t i = 0; i < 2; ++i) {
      const auto cqe = ring.try_reap();
      EXPECT_TRUE(cqe.has_value());
      if (!cqe.has_value()) continue;
      EXPECT_EQ(cqe->user_data, i);
      EXPECT_EQ(cqe->n, 4_KiB);
      EXPECT_TRUE(cqe->filled);
    }
    EXPECT_TRUE(std::equal(got.begin(), got.end(), data.begin()));

    // Retry against the closed descriptor: a clean ring-level failure.
    Sqe late;
    late.op = RingOp::kRead;
    late.rd = rd;
    late.offset = 0;
    late.len = 4_KiB;
    late.buf = got.data();
    late.user_data = 99;
    EXPECT_TRUE(ring.try_submit(late));
    co_await ring.drain();
    const auto cqe = ring.try_reap();
    EXPECT_TRUE(cqe.has_value());
    if (cqe.has_value()) {
      EXPECT_EQ(cqe->user_data, 99u);
      EXPECT_LT(cqe->n, 0);
      EXPECT_TRUE(cqe->degraded);
    }
  });
  EXPECT_EQ(fx.client.metrics().ring_submitted,
            fx.client.metrics().ring_completed);
  EXPECT_EQ(fx.client.metrics().batch_write_barriers, 1u);  // the mclose
}

TEST(Ring, WindowZeroWireByteIdentity) {
  // Batching off must be invisible on the wire: a client with
  // coalesce_window_bytes = 0 and an attached-but-unused ring produces the
  // exact datagram sequence of a pre-batching client, byte for byte.
  auto drive = [](bool attach_ring) {
    ClientParams clp;  // window stays 0: coalescing disabled
    RingFixture fx(2, RingFixture::plain(2), clp);
    WireDigest digest;
    fx.net.set_delivery_probe(
        [&digest](const net::Message& m) { digest.message(m); });
    fx.run([attach_ring](RingFixture& f) -> Co<void> {
      std::unique_ptr<DodoRing> ring;
      if (attach_ring) {
        ring = std::make_unique<DodoRing>(f.sim, f.client, 16);
      }
      const Bytes64 rlen = 64_KiB;
      const int rd = co_await f.client.mopen(rlen, f.fd, 0);
      EXPECT_GE(rd, 0);
      net::Buf data = pattern(static_cast<std::size_t>(rlen), 13);
      EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), rlen), rlen);
      net::Buf back(static_cast<std::size_t>(rlen), 0);
      for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(co_await f.client.mread(rd, 0, back.data(), rlen), rlen);
        EXPECT_EQ(back, data);
        EXPECT_EQ(co_await f.client.mread(rd, 8_KiB, back.data(), 4_KiB),
                  4_KiB);
      }
      EXPECT_EQ(co_await f.client.msync(rd), 0);
      EXPECT_EQ(co_await f.client.mclose(rd), 0);
    });
    fx.net.set_delivery_probe(nullptr);
    return digest;
  };
  const WireDigest base = drive(false);
  const WireDigest ringed = drive(true);
  EXPECT_GT(base.count, 0u);
  EXPECT_EQ(base.count, ringed.count);
  EXPECT_EQ(base.h, ringed.h) << "window=0 + idle ring changed the wire";
}

TEST(Ring, FragmentBoundaryDegradationIsRangeExact) {
  // A coalesced batch spanning a stripe-fragment boundary where exactly one
  // fragment's host died: only the ops inside the dead fragment degrade to
  // disk (their full op-relative range), the others stay remote hits, and
  // the mreads == hits + degraded conservation holds.
  RingFixture fx(2, RingFixture::plain(2),
                 RingFixture::coalescing(64_KiB, 1 * kMillisecond));
  fx.run([](RingFixture& f) -> Co<void> {
    const Bytes64 rlen = 64_KiB;  // two 32 KiB fragments on two hosts
    const int rd = co_await f.client.mopen(rlen, f.fd, 0);
    EXPECT_GE(rd, 0);
    net::Buf data = pattern(static_cast<std::size_t>(rlen), 17);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), rlen), rlen);
    EXPECT_EQ(f.imds[0]->region_count() + f.imds[1]->region_count(), 2);

    // Kill one fragment holder; which half it owned is placement detail.
    f.net.set_node_up(f.imds[1]->node(), false);

    // Two adjacent 8 KiB reads crossing the 32 KiB boundary, one batch.
    DodoRing ring(f.sim, f.client, 8);
    net::Buf got(static_cast<std::size_t>(16_KiB), 0);
    for (std::uint64_t i = 0; i < 2; ++i) {
      Sqe sqe;
      sqe.op = RingOp::kRead;
      sqe.rd = rd;
      sqe.offset = 24_KiB + static_cast<Bytes64>(i) * 8_KiB;
      sqe.len = 8_KiB;
      sqe.buf = got.data() + static_cast<std::ptrdiff_t>(i * 8192);
      sqe.user_data = i;
      EXPECT_TRUE(ring.try_submit(sqe));
    }
    co_await ring.drain();
    int degraded = 0;
    for (std::uint64_t i = 0; i < 2; ++i) {
      const auto cqe = ring.try_reap();
      EXPECT_TRUE(cqe.has_value());
      if (!cqe.has_value()) continue;
      EXPECT_EQ(cqe->user_data, i);
      EXPECT_EQ(cqe->n, 8_KiB);  // disk fills what the dead host cannot
      EXPECT_TRUE(cqe->filled);
      if (cqe->degraded) {
        ++degraded;
        // The op sits entirely inside the dead fragment: its whole
        // op-relative range — and nothing else — went to disk.
        EXPECT_EQ(cqe->disk_ranges.size(), 1u);
        EXPECT_EQ(cqe->disk_ranges[0].first, 0);
        EXPECT_EQ(cqe->disk_ranges[0].second, 8_KiB);
      } else {
        EXPECT_TRUE(cqe->disk_ranges.empty());
      }
    }
    EXPECT_EQ(degraded, 1);  // exactly the fragment whose host died
    // Both halves byte-exact: the degraded one from the write-through disk
    // image, the healthy one from remote memory.
    EXPECT_TRUE(std::equal(got.begin(), got.end(),
                           data.begin() + static_cast<std::ptrdiff_t>(24_KiB)));
  });
  const auto& m = fx.client.metrics();
  EXPECT_EQ(m.mreads_total, m.remote_hits + m.mreads_degraded);
  EXPECT_EQ(m.mreads_degraded, 1u);
  EXPECT_GE(m.disk_fallbacks, m.mreads_degraded);
}

TEST(Ring, EvictionMidBatchIsUseAfterSuspensionSafe) {
  // PR-5 regression, batched edition: a batch flush snapshots its Entry
  // fields before the first co_await. While two flushes sit suspended
  // against a dead host, the first to resolve prunes that host and erases
  // the *other* descriptor's Entry mid-flight; the second flush must keep
  // working from its copies (ASan-clean) and degrade its ops to disk.
  RingFixture fx(1, RingFixture::plain(),
                 RingFixture::coalescing(64_KiB, 10 * kMillisecond));
  fx.run([](RingFixture& f) -> Co<void> {
    const Bytes64 rlen = 64_KiB;
    const int rd1 = co_await f.client.mopen(rlen, f.fd, 0);
    const int rd2 = co_await f.client.mopen(rlen, f.fd, rlen);
    EXPECT_GE(rd1, 0);
    EXPECT_GE(rd2, 0);
    net::Buf d1 = pattern(static_cast<std::size_t>(rlen), 19);
    net::Buf d2 = pattern(static_cast<std::size_t>(rlen), 23);
    EXPECT_EQ(co_await f.client.mwrite(rd1, 0, d1.data(), rlen), rlen);
    EXPECT_EQ(co_await f.client.mwrite(rd2, 0, d2.data(), rlen), rlen);

    // Both regions live on the single host; kill it, then queue a batch on
    // each descriptor. Both flushes will time out against the dead host;
    // whichever resolves first prunes the host and drops the other Entry
    // out from under its suspended flush.
    f.net.set_node_up(f.imds[0]->node(), false);
    DodoRing ring(f.sim, f.client, 8);
    net::Buf got(static_cast<std::size_t>(16_KiB), 0);
    auto sub = [&](int rd, std::uint64_t ud, std::ptrdiff_t at) {
      Sqe sqe;
      sqe.op = RingOp::kRead;
      sqe.rd = rd;
      sqe.offset = static_cast<Bytes64>(ud & 1) * 4_KiB;
      sqe.len = 4_KiB;
      sqe.buf = got.data() + at;
      sqe.user_data = ud;
      EXPECT_TRUE(ring.try_submit(sqe));
    };
    sub(rd1, 0, 0);
    sub(rd1, 1, 4096);
    sub(rd2, 2, 8192);
    sub(rd2, 3, 12288);
    co_await ring.drain();
    for (int i = 0; i < 4; ++i) {
      const auto cqe = ring.try_reap();
      EXPECT_TRUE(cqe.has_value());
      if (!cqe.has_value()) continue;
      EXPECT_EQ(cqe->n, 4_KiB);  // disk keeps the data available
      EXPECT_TRUE(cqe->filled);
      EXPECT_TRUE(cqe->degraded);
      EXPECT_EQ(cqe->disk_ranges.size(), 1u);
      if (!cqe->disk_ranges.empty()) {
        EXPECT_EQ(cqe->disk_ranges[0].second, 4_KiB);
      }
    }
    // Bytes came back from the write-through disk image of each region.
    EXPECT_TRUE(std::equal(got.begin(),
                           got.begin() + static_cast<std::ptrdiff_t>(8_KiB),
                           d1.begin()));
    EXPECT_TRUE(std::equal(got.begin() + static_cast<std::ptrdiff_t>(8_KiB),
                           got.end(), d2.begin()));
  });
  const auto& m = fx.client.metrics();
  EXPECT_EQ(m.mreads_total, 4u);
  EXPECT_EQ(m.mreads_degraded, 4u);
  EXPECT_EQ(m.remote_hits, 0u);
  EXPECT_EQ(m.mreads_total, m.remote_hits + m.mreads_degraded);
  EXPECT_GE(m.disk_fallbacks, 4u);
  EXPECT_EQ(m.ring_submitted, m.ring_completed);
}

}  // namespace
}  // namespace dodo::runtime
