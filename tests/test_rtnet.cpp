// Tests for the real-UDP transport and bulk protocol on loopback. These
// use actual Berkeley sockets and threads; they skip gracefully when the
// environment forbids socket creation.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "net/codec.hpp"

#include "fuzz/permute.hpp"
#include "rtnet/rt_udp.hpp"

namespace dodo::rtnet {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>((i * 2654435761u) >> 11);
  }
  return v;
}

#define REQUIRE_SOCKETS(s)                                   \
  if (!(s).valid()) {                                        \
    GTEST_SKIP() << "UDP sockets unavailable in this sandbox"; \
  }

TEST(RtUdp, OpenSendRecv) {
  UdpSocket a = UdpSocket::open_loopback();
  REQUIRE_SOCKETS(a);
  UdpSocket b = UdpSocket::open_loopback();
  ASSERT_TRUE(b.valid());
  EXPECT_NE(a.port(), b.port());

  const std::uint8_t msg[] = {1, 2, 3, 4};
  ASSERT_TRUE(a.send_to(b.port(), msg, sizeof(msg)));
  auto got = b.recv(2000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->first, std::vector<std::uint8_t>({1, 2, 3, 4}));
  EXPECT_EQ(got->second, a.port());
}

TEST(RtUdp, RecvTimesOut) {
  UdpSocket a = UdpSocket::open_loopback();
  REQUIRE_SOCKETS(a);
  EXPECT_FALSE(a.recv(20).has_value());
}

void run_bulk(std::size_t len, double loss, std::uint64_t seed) {
  UdpSocket tx = UdpSocket::open_loopback();
  if (!tx.valid()) GTEST_SKIP() << "UDP sockets unavailable";
  UdpSocket rx = UdpSocket::open_loopback();
  ASSERT_TRUE(rx.valid());
  if (loss > 0) tx.set_drop_rate(loss, seed);

  const auto data = pattern(len);
  RtBulkParams params;
  params.max_retries = 100;
  RtBulkResult result;
  std::thread receiver([&] { result = rt_bulk_recv(rx, 9, params); });
  const Status st =
      rt_bulk_send(tx, rx.port(), 9, data.data(), data.size(), params);
  receiver.join();
  EXPECT_TRUE(st.is_ok()) << st.to_string();
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_EQ(result.data, data);
}

TEST(RtBulk, SingleChunk) { run_bulk(512, 0.0, 1); }

// Scatter-gather receive: chunk payloads land directly in the caller's
// segment buffers (DESIGN.md §16) with identical wire behaviour, including
// under injected loss, and per-segment completion flags flip exactly once
// each segment's full range has arrived.
void run_bulk_sg(std::size_t len, double loss, std::uint64_t seed) {
  UdpSocket tx = UdpSocket::open_loopback();
  if (!tx.valid()) GTEST_SKIP() << "UDP sockets unavailable";
  UdpSocket rx = UdpSocket::open_loopback();
  ASSERT_TRUE(rx.valid());
  if (loss > 0) tx.set_drop_rate(loss, seed);

  const auto data = pattern(len);
  // Uneven segments, including one discard hole in the middle: the logical
  // stream maps [seg0 | hole | seg2], so the wire still carries every byte
  // while only the kept ranges land in memory.
  const std::size_t a = len / 3;
  const std::size_t hole = len / 5;
  const std::size_t c = len - a - hole;
  std::vector<std::uint8_t> buf_a(a, 0), buf_c(c, 0);
  std::vector<RtScatterSeg> segs = {
      {buf_a.data(), a}, {nullptr, hole}, {buf_c.data(), c}};
  std::vector<std::uint8_t> seg_done;

  RtBulkParams params;
  params.max_retries = 100;
  RtBulkResult result;
  std::thread receiver([&] {
    result = rt_bulk_recv_sg(rx, 9, segs, &seg_done, params);
  });
  const Status st =
      rt_bulk_send(tx, rx.port(), 9, data.data(), data.size(), params);
  receiver.join();
  EXPECT_TRUE(st.is_ok()) << st.to_string();
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_TRUE(result.data.empty());  // nothing materialized centrally
  EXPECT_EQ(result.size, len);
  ASSERT_EQ(seg_done.size(), 3u);
  EXPECT_EQ(seg_done[0], 1);
  EXPECT_EQ(seg_done[1], 1);  // the discard hole still completes
  EXPECT_EQ(seg_done[2], 1);
  EXPECT_TRUE(std::equal(buf_a.begin(), buf_a.end(), data.begin()));
  EXPECT_TRUE(std::equal(buf_c.begin(), buf_c.end(),
                         data.begin() + static_cast<std::ptrdiff_t>(a + hole)));
}

TEST(RtBulk, ScatterGatherSingleWindow) { run_bulk_sg(4096, 0.0, 3); }

TEST(RtBulk, ScatterGatherMultiWindow) { run_bulk_sg(300000, 0.0, 3); }

TEST(RtBulk, ScatterGatherSurvivesInjectedLoss) {
  run_bulk_sg(200000, 0.05, 17);
}

TEST(RtBulk, MultiWindowMegabyte) { run_bulk(1024 * 1024, 0.0, 1); }

TEST(RtBulk, SurvivesInjectedLoss) { run_bulk(300000, 0.05, 7); }

// Sweep the retransmit machinery across several loss rates and rng
// streams; each (rate, seed) pair is an independent adversary, and the
// payload must come through byte-exact in all of them.
TEST(RtBulk, SurvivesPermutedLossSweep) {
  for (std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    for (double rate : {0.02, 0.10}) {
      run_bulk(120000, rate, seed);
      if (::testing::Test::IsSkipped()) return;
    }
  }
}

// Datagram sockets promise nothing about order or multiplicity. Drive a
// real socket with an adversarial delivery plan from the fuzz permuter —
// bounded reorder plus duplicates — and check the receiver observes
// exactly the planned multiset, no more, no fewer.
TEST(RtUdp, ToleratesReorderedAndDuplicatedDatagrams) {
  UdpSocket tx = UdpSocket::open_loopback();
  REQUIRE_SOCKETS(tx);
  UdpSocket rx = UdpSocket::open_loopback();
  ASSERT_TRUE(rx.valid());

  constexpr std::size_t kMsgs = 48;
  const auto plan =
      fuzz::permute_deliveries(kMsgs, 21, {0.0, 0.25, 4});
  ASSERT_GT(plan.size(), kMsgs);  // the dup rate must have fired

  std::map<std::uint32_t, int> expected;
  for (std::size_t idx : plan) {
    const std::uint32_t tag = static_cast<std::uint32_t>(idx);
    std::uint8_t wire[4];
    std::memcpy(wire, &tag, sizeof(tag));
    ASSERT_TRUE(tx.send_to(rx.port(), wire, sizeof(wire)));
    ++expected[tag];
  }

  // Loopback does not lose datagrams, so every planned delivery arrives.
  std::map<std::uint32_t, int> got;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    auto d = rx.recv(2000);
    ASSERT_TRUE(d.has_value()) << "datagram " << i << " never arrived";
    ASSERT_EQ(d->first.size(), 4u);
    std::uint32_t tag = 0;
    std::memcpy(&tag, d->first.data(), sizeof(tag));
    ++got[tag];
  }
  EXPECT_EQ(got, expected);
  EXPECT_FALSE(rx.recv(20).has_value());  // and nothing extra
}

// Raw kData frame as rt_udp.cpp lays it out: u8 kind(3), u64 xfer, u64 seq,
// u64 nchunks, i64 total_len, u32 payload_len, payload bytes.
net::Buf raw_chunk(std::uint64_t xfer, std::uint64_t seq,
                   std::uint64_t nchunks,
                   const std::vector<std::uint8_t>& data, std::size_t piece) {
  const std::size_t off = static_cast<std::size_t>(seq) * piece;
  const std::size_t n = std::min(piece, data.size() - off);
  net::Buf msg;
  net::Writer w(msg);
  w.u8(3);  // kData
  w.u64(xfer);
  w.u64(seq);
  w.u64(nchunks);
  w.i64(static_cast<std::int64_t>(data.size()));
  w.u32(static_cast<std::uint32_t>(n));
  w.bytes(data.data() + off, n);
  return msg;
}

TEST(RtBulk, SlowSenderJustUnderGapDrawsNoNack) {
  // Mirror of the simulated-transport test: the receive-gap timer re-arms
  // on every in-order chunk, so pacing chunks just under the gap draws no
  // NACK and the payload lands byte-exact.
  UdpSocket tx = UdpSocket::open_loopback();
  REQUIRE_SOCKETS(tx);
  UdpSocket rx = UdpSocket::open_loopback();
  ASSERT_TRUE(rx.valid());

  RtBulkParams params;
  params.chunk = 512;
  params.recv_gap_timeout_ms = 120;  // generous: scheduler noise can't fire it
  const auto data = pattern(4 * 512);
  RtBulkResult result;
  std::thread receiver([&] { result = rt_bulk_recv(rx, 9, params); });

  int nacks_seen = 0;
  auto drain = [&](int timeout_ms) {
    while (auto m = tx.recv(timeout_ms)) {
      if (!m->first.empty() && m->first[0] == 5) ++nacks_seen;  // kNack
      if (!m->first.empty() && m->first[0] == 4) return true;   // kAck
    }
    return false;
  };
  for (std::uint64_t seq = 0; seq < 4; ++seq) {
    if (seq > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(80));
      drain(0);
    }
    const net::Buf msg = raw_chunk(9, seq, 4, data, params.chunk);
    ASSERT_TRUE(tx.send_to(rx.port(), msg.data(), msg.size()));
  }
  drain(2000);  // wait for the final ACK
  receiver.join();
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_EQ(result.data, data);
  EXPECT_EQ(nacks_seen, 0);
}

TEST(RtBulk, DuplicateFloodStillDrawsTargetedNack) {
  // Duplicates make no progress and must not re-arm the gap timer: a sender
  // re-blasting chunk 0 while withholding the rest gets a NACK promptly.
  UdpSocket tx = UdpSocket::open_loopback();
  REQUIRE_SOCKETS(tx);
  UdpSocket rx = UdpSocket::open_loopback();
  ASSERT_TRUE(rx.valid());

  RtBulkParams params;
  params.chunk = 512;
  params.recv_gap_timeout_ms = 30;
  const auto data = pattern(4 * 512);
  RtBulkResult result;
  std::thread receiver([&] { result = rt_bulk_recv(rx, 9, params); });

  net::Buf first = raw_chunk(9, 0, 4, data, params.chunk);
  ASSERT_TRUE(tx.send_to(rx.port(), first.data(), first.size()));
  bool nacked = false;
  for (int i = 0; i < 200 && !nacked; ++i) {
    if (auto m = tx.recv(10)) {
      if (!m->first.empty() && m->first[0] == 5) nacked = true;
    } else {
      ASSERT_TRUE(tx.send_to(rx.port(), first.data(), first.size()));
    }
  }
  for (std::uint64_t seq = 1; seq < 4; ++seq) {
    const net::Buf msg = raw_chunk(9, seq, 4, data, params.chunk);
    ASSERT_TRUE(tx.send_to(rx.port(), msg.data(), msg.size()));
  }
  while (auto m = tx.recv(2000)) {
    if (!m->first.empty() && m->first[0] == 4) break;  // final ACK
  }
  receiver.join();
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_EQ(result.data, data);
  EXPECT_TRUE(nacked);
}

TEST(RtBulk, ReceiverTimesOutWithoutSender) {
  UdpSocket rx = UdpSocket::open_loopback();
  REQUIRE_SOCKETS(rx);
  RtBulkParams params;
  params.recv_gap_timeout_ms = 5;
  params.max_retries = 3;
  const auto result = rt_bulk_recv(rx, 1, params);
  EXPECT_EQ(result.status.code(), Err::kTimeout);
}

TEST(RtBulk, SenderTimesOutWithoutReceiver) {
  UdpSocket tx = UdpSocket::open_loopback();
  REQUIRE_SOCKETS(tx);
  RtBulkParams params;
  params.ack_timeout_ms = 5;
  params.max_retries = 3;
  const auto data = pattern(100000);
  const Status st = rt_bulk_send(tx, 1 /* nobody */, 1, data.data(),
                                 data.size(), params);
  EXPECT_EQ(st.code(), Err::kTimeout);
}

}  // namespace
}  // namespace dodo::rtnet
