// Tests for the real-UDP transport and bulk protocol on loopback. These
// use actual Berkeley sockets and threads; they skip gracefully when the
// environment forbids socket creation.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "rtnet/rt_udp.hpp"

namespace dodo::rtnet {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>((i * 2654435761u) >> 11);
  }
  return v;
}

#define REQUIRE_SOCKETS(s)                                   \
  if (!(s).valid()) {                                        \
    GTEST_SKIP() << "UDP sockets unavailable in this sandbox"; \
  }

TEST(RtUdp, OpenSendRecv) {
  UdpSocket a = UdpSocket::open_loopback();
  REQUIRE_SOCKETS(a);
  UdpSocket b = UdpSocket::open_loopback();
  ASSERT_TRUE(b.valid());
  EXPECT_NE(a.port(), b.port());

  const std::uint8_t msg[] = {1, 2, 3, 4};
  ASSERT_TRUE(a.send_to(b.port(), msg, sizeof(msg)));
  auto got = b.recv(2000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->first, std::vector<std::uint8_t>({1, 2, 3, 4}));
  EXPECT_EQ(got->second, a.port());
}

TEST(RtUdp, RecvTimesOut) {
  UdpSocket a = UdpSocket::open_loopback();
  REQUIRE_SOCKETS(a);
  EXPECT_FALSE(a.recv(20).has_value());
}

void run_bulk(std::size_t len, double loss, std::uint64_t seed) {
  UdpSocket tx = UdpSocket::open_loopback();
  if (!tx.valid()) GTEST_SKIP() << "UDP sockets unavailable";
  UdpSocket rx = UdpSocket::open_loopback();
  ASSERT_TRUE(rx.valid());
  if (loss > 0) tx.set_drop_rate(loss, seed);

  const auto data = pattern(len);
  RtBulkParams params;
  params.max_retries = 100;
  RtBulkResult result;
  std::thread receiver([&] { result = rt_bulk_recv(rx, 9, params); });
  const Status st =
      rt_bulk_send(tx, rx.port(), 9, data.data(), data.size(), params);
  receiver.join();
  EXPECT_TRUE(st.is_ok()) << st.to_string();
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_EQ(result.data, data);
}

TEST(RtBulk, SingleChunk) { run_bulk(512, 0.0, 1); }

TEST(RtBulk, MultiWindowMegabyte) { run_bulk(1024 * 1024, 0.0, 1); }

TEST(RtBulk, SurvivesInjectedLoss) { run_bulk(300000, 0.05, 7); }

TEST(RtBulk, ReceiverTimesOutWithoutSender) {
  UdpSocket rx = UdpSocket::open_loopback();
  REQUIRE_SOCKETS(rx);
  RtBulkParams params;
  params.recv_gap_timeout_ms = 5;
  params.max_retries = 3;
  const auto result = rt_bulk_recv(rx, 1, params);
  EXPECT_EQ(result.status.code(), Err::kTimeout);
}

TEST(RtBulk, SenderTimesOutWithoutReceiver) {
  UdpSocket tx = UdpSocket::open_loopback();
  REQUIRE_SOCKETS(tx);
  RtBulkParams params;
  params.ack_timeout_ms = 5;
  params.max_retries = 3;
  const auto data = pattern(100000);
  const Status st = rt_bulk_send(tx, 1 /* nobody */, 1, data.data(),
                                 data.size(), params);
  EXPECT_EQ(st.code(), Err::kTimeout);
}

}  // namespace
}  // namespace dodo::rtnet
