// Tests for the imd's first-fit pool allocator (§4.2), including
// property-style random alloc/free streams checking structural invariants.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "core/pool_allocator.hpp"

namespace dodo::core {
namespace {

TEST(PoolAllocator, FreshPoolIsOneFreeBlock) {
  PoolAllocator p(1000);
  EXPECT_EQ(p.total_free(), 1000);
  EXPECT_EQ(p.largest_free(), 1000);
  EXPECT_EQ(p.free_block_count(), 1u);
  EXPECT_DOUBLE_EQ(p.external_fragmentation(), 0.0);
  EXPECT_TRUE(p.check_invariants());
}

TEST(PoolAllocator, FirstFitTakesLowestOffset) {
  PoolAllocator p(1000);
  auto a = p.alloc(100);
  auto b = p.alloc(100);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*a, 0);
  EXPECT_EQ(*b, 100);
}

TEST(PoolAllocator, ExactFitConsumesBlock) {
  PoolAllocator p(256);
  auto a = p.alloc(256);
  ASSERT_TRUE(a);
  EXPECT_EQ(p.total_free(), 0);
  EXPECT_FALSE(p.alloc(1).has_value());
  EXPECT_TRUE(p.check_invariants());
}

TEST(PoolAllocator, RejectsImpossibleRequests) {
  PoolAllocator p(100);
  EXPECT_FALSE(p.alloc(0).has_value());
  EXPECT_FALSE(p.alloc(-5).has_value());
  EXPECT_FALSE(p.alloc(101).has_value());
}

TEST(PoolAllocator, FreeWithoutCoalesceLeavesFragments) {
  PoolAllocator p(300);
  auto a = p.alloc(100);
  auto b = p.alloc(100);
  auto c = p.alloc(100);
  ASSERT_TRUE(a && b && c);
  EXPECT_TRUE(p.free(*a));
  EXPECT_TRUE(p.free(*b));
  // 200 bytes free but in two blocks: a 200-byte request must fail until
  // the periodic coalescing pass runs (paper: coalescing is periodic).
  EXPECT_EQ(p.total_free(), 200);
  EXPECT_EQ(p.free_block_count(), 2u);
  EXPECT_FALSE(p.alloc(200).has_value());
  p.coalesce();
  EXPECT_EQ(p.free_block_count(), 1u);
  EXPECT_TRUE(p.alloc(200).has_value());
  EXPECT_TRUE(p.check_invariants());
}

TEST(PoolAllocator, DoubleFreeRejected) {
  PoolAllocator p(100);
  auto a = p.alloc(50);
  ASSERT_TRUE(a);
  EXPECT_TRUE(p.free(*a));
  EXPECT_FALSE(p.free(*a));
  EXPECT_FALSE(p.free(9999));
}

TEST(PoolAllocator, SplitLeavesRemainderUsable) {
  PoolAllocator p(100);
  auto a = p.alloc(30);
  ASSERT_TRUE(a);
  EXPECT_EQ(p.largest_free(), 70);
  auto b = p.alloc(70);
  ASSERT_TRUE(b);
  EXPECT_EQ(*b, 30);
}

TEST(PoolAllocator, FragmentationMetric) {
  PoolAllocator p(400);
  auto a = p.alloc(100);
  auto b = p.alloc(100);
  auto c = p.alloc(100);
  (void)c;
  ASSERT_TRUE(a && b);
  p.free(*a);
  // free: [0,100) and [300,400) => largest 100 of 200 free
  EXPECT_NEAR(p.external_fragmentation(), 0.5, 1e-9);
}

class PoolAllocatorRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PoolAllocatorRandomized, InvariantsHoldUnderRandomWorkload) {
  Rng rng(GetParam());
  const Bytes64 pool_size = 1 << 20;
  PoolAllocator p(pool_size);
  std::vector<std::pair<Bytes64, Bytes64>> live;  // offset, len
  Bytes64 live_bytes = 0;

  for (int step = 0; step < 3000; ++step) {
    const bool do_alloc = live.empty() || rng.chance(0.6);
    if (do_alloc) {
      const Bytes64 len = rng.range(1, 32 * 1024);
      if (auto off = p.alloc(len)) {
        // New block must not overlap any live block.
        for (const auto& [o, l] : live) {
          EXPECT_FALSE(*off < o + l && o < *off + len)
              << "overlap at step " << step;
        }
        live.emplace_back(*off, len);
        live_bytes += len;
      } else {
        // Failure is only legitimate if no free block is big enough.
        EXPECT_LT(p.largest_free(), len);
      }
    } else {
      const std::size_t idx =
          static_cast<std::size_t>(rng.below(live.size()));
      EXPECT_TRUE(p.free(live[idx].first));
      live_bytes -= live[idx].second;
      live[idx] = live.back();
      live.pop_back();
    }
    if (step % 64 == 0) p.coalesce();
    if (step % 256 == 0) {
      ASSERT_TRUE(p.check_invariants()) << "step " << step;
      EXPECT_EQ(p.total_free(), pool_size - live_bytes);
    }
  }
  p.coalesce();
  ASSERT_TRUE(p.check_invariants());
  // Free everything: pool must return to a single block after coalescing.
  for (const auto& [o, l] : live) {
    (void)l;
    EXPECT_TRUE(p.free(o));
  }
  p.coalesce();
  EXPECT_EQ(p.free_block_count(), 1u);
  EXPECT_EQ(p.largest_free(), pool_size);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolAllocatorRandomized,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace dodo::core
