// Tests for the discrete-event simulator: event ordering, coroutine tasks,
// channels, timeouts, wait groups.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace dodo::sim {
namespace {

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30_ms, [&] { order.push_back(3); });
  sim.schedule(10_ms, [&] { order.push_back(1); });
  sim.schedule(20_ms, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30_ms);
}

TEST(Simulator, SameTimeEventsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    sim.schedule(5_ms, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, RunRespectsTimeLimit) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10_ms, [&] { ++fired; });
  sim.schedule(100_ms, [&] { ++fired; });
  sim.run(50_ms);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50_ms);
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule(10_ms, [&] {
    sim.schedule(1_ms, [&] { seen = sim.now(); });  // in the "past"
  });
  sim.run();
  EXPECT_EQ(seen, 10_ms);
}

Co<void> sleeper(Simulator& sim, std::vector<SimTime>& log) {
  log.push_back(sim.now());
  co_await sim.sleep(5_ms);
  log.push_back(sim.now());
  co_await sim.sleep(7_ms);
  log.push_back(sim.now());
}

TEST(Task, SleepAdvancesSimTime) {
  Simulator sim;
  std::vector<SimTime> log;
  sim.spawn(sleeper(sim, log));
  sim.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], 0);
  EXPECT_EQ(log[1], 5_ms);
  EXPECT_EQ(log[2], 12_ms);
}

Co<int> answer(Simulator& sim) {
  co_await sim.sleep(1_ms);
  co_return 42;
}

Co<void> asker(Simulator& sim, int& out) {
  out = co_await answer(sim);
}

TEST(Task, ValueReturningSubtask) {
  Simulator sim;
  int out = 0;
  sim.spawn(asker(sim, out));
  sim.run();
  EXPECT_EQ(out, 42);
  EXPECT_EQ(sim.now(), 1_ms);
}

Co<int> deep(Simulator& sim, int depth) {
  if (depth == 0) co_return 1;
  co_await sim.sleep(1_us);
  const int below = co_await deep(sim, depth - 1);
  co_return below + 1;
}

TEST(Task, DeeplyNestedAwaitChains) {
  Simulator sim;
  int out = 0;
  sim.spawn([](Simulator& s, int& o) -> Co<void> {
    o = co_await deep(s, 200);
  }(sim, out));
  sim.run();
  EXPECT_EQ(out, 201);
}

Co<void> producer(Simulator& sim, Channel<int>& ch, int n) {
  for (int i = 0; i < n; ++i) {
    co_await sim.sleep(1_ms);
    ch.send(i);
  }
}

Co<void> consumer(Channel<int>& ch, int n, std::vector<int>& got) {
  for (int i = 0; i < n; ++i) {
    got.push_back(co_await ch.recv());
  }
}

TEST(Channel, DeliversInOrder) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  sim.spawn(consumer(ch, 5, got));
  sim.spawn(producer(sim, ch, 5));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, BufferedValuesReceivedWithoutSuspending) {
  Simulator sim;
  Channel<std::string> ch(sim);
  ch.send("a");
  ch.send("b");
  std::vector<std::string> got;
  sim.spawn([](Channel<std::string>& c, std::vector<std::string>& g) -> Co<void> {
    g.push_back(co_await c.recv());
    g.push_back(co_await c.recv());
  }(ch, got));
  sim.run();
  EXPECT_EQ(got, (std::vector<std::string>{"a", "b"}));
}

TEST(Channel, RecvForTimesOut) {
  Simulator sim;
  Channel<int> ch(sim);
  std::optional<int> got = 123;
  sim.spawn([](Simulator&, Channel<int>& c, std::optional<int>& g) -> Co<void> {
    g = co_await c.recv_for(10_ms);
  }(sim, ch, got));
  sim.run();
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(sim.now(), 10_ms);
}

TEST(Channel, RecvForValueBeatsTimeout) {
  Simulator sim;
  Channel<int> ch(sim);
  std::optional<int> got;
  SimTime when = -1;
  sim.spawn([](Simulator& s, Channel<int>& c, std::optional<int>& g,
               SimTime& w) -> Co<void> {
    g = co_await c.recv_for(10_ms);
    w = s.now();
  }(sim, ch, got, when));
  sim.schedule(3_ms, [&] { ch.send(7); });
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 7);
  EXPECT_EQ(when, 3_ms);
  // The dead timer event must not resume the coroutine again.
  EXPECT_GE(sim.now(), 10_ms);
}

TEST(Channel, LateSendSkipsTimedOutWaiter) {
  Simulator sim;
  Channel<int> ch(sim);
  std::optional<int> first, second;
  sim.spawn([](Channel<int>& c, std::optional<int>& g) -> Co<void> {
    g = co_await c.recv_for(5_ms);
  }(ch, first));
  sim.spawn([](Channel<int>& c, std::optional<int>& g) -> Co<void> {
    g = co_await c.recv_for(50_ms);
  }(ch, second));
  sim.schedule(20_ms, [&] { ch.send(9); });
  sim.run();
  EXPECT_FALSE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, 9);
}

TEST(Channel, TryRecvDoesNotBlock) {
  Simulator sim;
  Channel<int> ch(sim);
  EXPECT_FALSE(ch.try_recv().has_value());
  ch.send(5);
  auto v = ch.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 5);
}

TEST(WaitGroup, WaitsForAllChildren) {
  Simulator sim;
  WaitGroup wg(sim);
  SimTime finished_at = -1;
  for (int i = 1; i <= 3; ++i) {
    wg.add();
    sim.spawn([](Simulator& s, WaitGroup& w, int ms) -> Co<void> {
      co_await s.sleep(millis(ms));
      w.done();
    }(sim, wg, i * 10));
  }
  sim.spawn([](Simulator& s, WaitGroup& w, SimTime& t) -> Co<void> {
    co_await w.wait();
    t = s.now();
  }(sim, wg, finished_at));
  sim.run();
  EXPECT_EQ(finished_at, 30_ms);
}

TEST(Simulator, StopRequestHaltsLoop) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1_ms, [&] {
    ++fired;
    sim.request_stop();
  });
  sim.schedule(2_ms, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim(seed);
    std::vector<std::uint64_t> draws;
    sim.spawn([](Simulator& s, std::vector<std::uint64_t>& d) -> Co<void> {
      for (int i = 0; i < 10; ++i) {
        co_await s.sleep(millis(static_cast<double>(s.rng().below(5)) + 1));
        d.push_back(s.rng().next());
      }
    }(sim, draws));
    sim.run();
    return std::pair{draws, sim.now()};
  };
  auto [a1, t1] = run_once(99);
  auto [a2, t2] = run_once(99);
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(t1, t2);
  auto [b1, tb] = run_once(100);
  EXPECT_NE(a1, b1);
}

}  // namespace
}  // namespace dodo::sim
