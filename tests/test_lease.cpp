// Lease-based harvest economics (DESIGN.md §14): every imd-hosted region
// carries a lease granted at alloc and renewed by the cmd's keep-alive
// tick; expiry fences the region (bytes reclaimed, id never resurrected
// within the epoch), pressure shrinks schedule the coldest regions first,
// and a near-expiry sole copy is proactively re-homed through the clone
// handshake before its fence. These tests pin the lease state machine at
// the cmd/imd unit level: grant, renewal, expiry + fencing, renewal
// rejection of fenced ids, free idempotence across the fence,
// coldest-first victim selection, the proactive-copy trigger, and the
// lease_epochs=off quiet path (no lease metrics, no lease state).
// Labeled `lease` (ctest -L lease / the lease and lease-asan presets).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "core/cmd.hpp"
#include "core/imd.hpp"
#include "disk/filesystem.hpp"
#include "runtime/dodo_client.hpp"
#include "sim/simulator.hpp"

namespace dodo::runtime {
namespace {

using sim::Co;
using sim::Simulator;

// Node 0: cmd. Node 1: application. Nodes 2..1+hosts: imds.
struct LeaseFixture {
  Simulator sim{61};
  net::Network net;
  core::CentralManager cmd;
  disk::SimFilesystem fs;
  std::vector<std::unique_ptr<core::IdleMemoryDaemon>> imds;
  DodoClient client;
  int fd = -1;

  LeaseFixture(int hosts, core::CmdParams cp, core::ImdParams ip)
      : net(sim, net::NetParams::unet(),
            static_cast<std::size_t>(hosts) + 2),
        cmd(sim, net, 0, cp),
        fs(sim),
        client(sim, net, 1, net::Endpoint{0, core::kCmdPort}, fs, {}) {
    cmd.start();
    for (int i = 0; i < hosts; ++i) {
      imds.push_back(std::make_unique<core::IdleMemoryDaemon>(
          sim, net, static_cast<net::NodeId>(i + 2), 1,
          net::Endpoint{0, core::kCmdPort}, ip));
      imds.back()->start();
    }
    fs.create("backing", 8_MiB);
    fd = fs.open("backing", disk::OpenMode::kReadWrite);
    client.start();
  }

  /// Fast ticks so grant->renew->expire->re-home all fits in simulated
  /// seconds: keep-alive 500ms, ttl 3s (6 ticks), grace 1.5s (3 ticks).
  static core::CmdParams lease_cmd(bool on = true) {
    core::CmdParams p;
    p.lease_epochs = on;
    p.keepalive_interval = millis(500);
    return p;
  }
  static core::ImdParams lease_imd(bool on = true,
                                   Duration ttl = seconds(3.0),
                                   Duration grace = seconds(1.5)) {
    core::ImdParams p;
    p.pool_bytes = 16_MiB;
    p.lease_epochs = on;
    p.lease_ttl = ttl;
    p.lease_grace = grace;
    return p;
  }

  template <typename F>
  void run(F&& body, SimTime limit = 300_s) {
    bool finished = false;
    sim.spawn([](LeaseFixture& f, F fn, bool& done) -> Co<void> {
      co_await f.sim.sleep(5_ms);  // let daemons register
      co_await fn(f);
      done = true;
    }(*this, std::forward<F>(body), finished));
    sim.run(limit);
    EXPECT_TRUE(finished) << "test body did not complete";
  }

  /// The single live region id on `imds[i]` (0 when none).
  [[nodiscard]] std::uint64_t sole_region(std::size_t i = 0) const {
    const auto list = imds[i]->region_list();
    return list.size() == 1 ? list.front().first : 0;
  }
};

net::Buf pattern(std::size_t n, std::uint8_t salt = 0) {
  net::Buf b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 131 + salt) & 0xff);
  }
  return b;
}

TEST(Lease, GrantedOnAllocAndRenewedByKeepalive) {
  LeaseFixture fx(1, LeaseFixture::lease_cmd(), LeaseFixture::lease_imd());
  fx.run([](LeaseFixture& f) -> Co<void> {
    const Bytes64 rlen = 64_KiB;
    const int rd = co_await f.client.mopen(rlen, f.fd, 0);
    EXPECT_GE(rd, 0);
    const std::uint64_t id = f.sole_region();
    EXPECT_NE(id, 0u);
    // Granted at alloc: the lease already has an absolute expiry.
    const SimTime granted = f.imds[0]->region_lease_expiry(id);
    EXPECT_GT(granted, f.sim.now());
    net::Buf data = pattern(static_cast<std::size_t>(rlen), 3);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), rlen), rlen);

    // Three ttls later the region is still alive purely because the cmd's
    // keep-alive tick kept renewing: the expiry has been pushed out and
    // nothing was reclaimed.
    co_await f.sim.sleep(seconds(10.0));
    EXPECT_EQ(f.imds[0]->region_count(), 1u);
    EXPECT_GT(f.imds[0]->region_lease_expiry(id), granted);
    EXPECT_EQ(f.imds[0]->metrics().regions_reclaimed, 0u);
    EXPECT_GE(f.imds[0]->metrics().leases_renewed, 6u);
    EXPECT_GE(f.cmd.metrics().lease_renewals, 6u);
    EXPECT_EQ(f.cmd.metrics().lease_renew_rejects, 0u);

    // And it still serves bytes from remote memory.
    net::Buf back(static_cast<std::size_t>(rlen), 0);
    const auto rr = co_await f.client.mread_ex(rd, 0, back.data(), rlen);
    EXPECT_EQ(rr.n, rlen);
    EXPECT_TRUE(rr.disk_ranges.empty());
    EXPECT_EQ(back, data);
  });
}

TEST(Lease, ExpiryWithoutRenewalFencesAndReclaims) {
  // The cmd half is off: nobody renews, so the grant's ttl is the region's
  // whole life. (A dead or partitioned cmd behaves the same way — expiry
  // needs no message to arrive.)
  LeaseFixture fx(1, LeaseFixture::lease_cmd(false), LeaseFixture::lease_imd());
  fx.run([](LeaseFixture& f) -> Co<void> {
    const Bytes64 rlen = 64_KiB;
    const int rd = co_await f.client.mopen(rlen, f.fd, 0);
    EXPECT_GE(rd, 0);
    net::Buf data = pattern(static_cast<std::size_t>(rlen), 7);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), rlen), rlen);
    const std::uint64_t id = f.sole_region();
    EXPECT_NE(id, 0u);

    // Past ttl (+ a check tick): fenced and reclaimed, pool bytes back.
    co_await f.sim.sleep(seconds(4.0));
    EXPECT_EQ(f.imds[0]->region_count(), 0u);
    EXPECT_TRUE(f.imds[0]->lease_fenced(id));
    EXPECT_EQ(f.imds[0]->metrics().regions_reclaimed, 1u);
    EXPECT_EQ(f.imds[0]->metrics().bytes_reclaimed,
              static_cast<std::uint64_t>(rlen));
    EXPECT_EQ(f.imds[0]->allocated_bytes(), 0u);

    // A late read through the stale directory entry cannot resurrect it:
    // the imd rejects the fenced id and the client degrades to disk, whose
    // bytes (mwrite is write-through) are still exact.
    net::Buf back(static_cast<std::size_t>(rlen), 0);
    const auto rr = co_await f.client.mread_ex(rd, 0, back.data(), rlen);
    EXPECT_EQ(rr.n, rlen);
    EXPECT_FALSE(rr.disk_ranges.empty());
    EXPECT_EQ(back, data);
    EXPECT_EQ(f.imds[0]->region_count(), 0u);
    EXPECT_GE(f.imds[0]->metrics().bad_region_requests, 1u);
    EXPECT_TRUE(f.imds[0]->lease_fenced(id));
  });
}

TEST(Lease, RenewalRejectsFencedIdAndStaleEpoch) {
  LeaseFixture fx(1, LeaseFixture::lease_cmd(false), LeaseFixture::lease_imd());
  fx.run([](LeaseFixture& f) -> Co<void> {
    const int rd = co_await f.client.mopen(64_KiB, f.fd, 0);
    EXPECT_GE(rd, 0);
    const std::uint64_t fenced_id = f.sole_region();
    co_await f.sim.sleep(seconds(4.0));  // expire and fence it
    EXPECT_TRUE(f.imds[0]->lease_fenced(fenced_id));

    // A second region, freshly leased, to prove a stale-epoch renewal
    // extends nothing.
    const int rd2 = co_await f.client.mopen(64_KiB, f.fd, 64_KiB);
    EXPECT_GE(rd2, 0);
    const std::uint64_t live_id = f.sole_region();
    EXPECT_NE(live_id, 0u);
    const SimTime live_expiry = f.imds[0]->region_lease_expiry(live_id);

    // Renewal naming the fenced id under the current epoch: the reply is
    // ok (epoch matched) but the id comes back rejected — the cmd's cue to
    // prune the copy rather than keep renewing a ghost.
    auto sock = f.net.open_ephemeral(1);
    {
      net::Buf h = core::make_header(core::MsgKind::kLeaseRenewReq, 990001);
      net::Writer w(h);
      w.u64(1);  // imd epoch
      w.u32(1);
      w.u64(fenced_id);
      sock->send(net::Endpoint{f.imds[0]->node(), core::kImdCtlPort},
                 std::move(h));
      auto rep = co_await sock->recv_for(seconds(1.0));
      EXPECT_TRUE(rep.has_value());
      if (!rep.has_value()) co_return;
      auto env = core::peek_envelope(*rep);
      EXPECT_TRUE(env.has_value());
      if (!env.has_value()) co_return;
      EXPECT_EQ(env->kind, core::MsgKind::kLeaseRenewRep);
      net::Reader r = core::body_reader(*rep);
      EXPECT_EQ(r.u8(), 1);            // epoch matched
      EXPECT_EQ(r.u64(), 1u);          // current epoch echoed
      (void)r.i64();                   // largest-free hint
      EXPECT_EQ(r.u32(), 1u);          // exactly our id rejected
      EXPECT_EQ(r.u64(), fenced_id);
      EXPECT_TRUE(r.ok());
    }
    EXPECT_GE(f.imds[0]->metrics().lease_renew_rejects, 1u);

    // Renewal of the live id under a stale epoch: not ok, nothing extended.
    {
      net::Buf h = core::make_header(core::MsgKind::kLeaseRenewReq, 990002);
      net::Writer w(h);
      w.u64(7);  // wrong incarnation
      w.u32(1);
      w.u64(live_id);
      sock->send(net::Endpoint{f.imds[0]->node(), core::kImdCtlPort},
                 std::move(h));
      auto rep = co_await sock->recv_for(seconds(1.0));
      EXPECT_TRUE(rep.has_value());
      if (!rep.has_value()) co_return;
      net::Reader r = core::body_reader(*rep);
      EXPECT_EQ(r.u8(), 0);
    }
    EXPECT_EQ(f.imds[0]->region_lease_expiry(live_id), live_expiry);

    // No resurrection: the fenced id is still fenced and no live region
    // wears it.
    for (const auto& [id, len] : f.imds[0]->region_list()) {
      EXPECT_FALSE(f.imds[0]->lease_fenced(id));
    }
    EXPECT_TRUE(f.imds[0]->lease_fenced(fenced_id));
  });
}

TEST(Lease, FreeOfFencedRegionIsIdempotentSuccess) {
  LeaseFixture fx(1, LeaseFixture::lease_cmd(false), LeaseFixture::lease_imd());
  fx.run([](LeaseFixture& f) -> Co<void> {
    const int rd = co_await f.client.mopen(64_KiB, f.fd, 0);
    EXPECT_GE(rd, 0);
    const std::uint64_t id = f.sole_region();
    co_await f.sim.sleep(seconds(4.0));  // fence it
    EXPECT_TRUE(f.imds[0]->lease_fenced(id));

    // The client's close frees through the cmd. The bytes are already
    // gone, but the free must report success — otherwise the fragment
    // parks on the pending-free retry list forever.
    EXPECT_EQ(co_await f.client.mclose(rd), 0);
    co_await f.sim.sleep(millis(50));
    EXPECT_EQ(f.cmd.region_count(), 0u);
    EXPECT_EQ(f.cmd.pending_free_count(), 0u);
  });
}

TEST(Lease, ShrinkSchedulesColdestRegionsFirst) {
  // Long ttl so only the shrink (never natural expiry) drives reclamation.
  LeaseFixture fx(1, LeaseFixture::lease_cmd(false),
                  LeaseFixture::lease_imd(true, seconds(60.0), seconds(1.0)));
  fx.run([](LeaseFixture& f) -> Co<void> {
    const Bytes64 rlen = 64_KiB;
    std::vector<int> rds;
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 3; ++i) {
      const int rd = co_await f.client.mopen(
          rlen, f.fd, static_cast<Bytes64>(i) * rlen);
      EXPECT_GE(rd, 0);
      net::Buf data = pattern(static_cast<std::size_t>(rlen),
                              static_cast<std::uint8_t>(11 + i));
      EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), rlen), rlen);
      rds.push_back(rd);
      // The id just added is the one not seen before.
      for (const auto& [id, len] : f.imds[0]->region_list()) {
        if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
          ids.push_back(id);
        }
      }
    }
    EXPECT_EQ(ids.size(), 3u);
    if (ids.size() != 3u) co_return;

    // Touch regions 1 and 2; region 0 stays cold at its write timestamp.
    co_await f.sim.sleep(millis(100));
    net::Buf back(static_cast<std::size_t>(rlen), 0);
    EXPECT_EQ(co_await f.client.mread(rds[1], 0, back.data(), rlen), rlen);
    EXPECT_EQ(co_await f.client.mread(rds[2], 0, back.data(), rlen), rlen);

    // Shrink to two regions' worth: exactly the coldest one is scheduled —
    // its expiry snaps to the grace window while the others keep theirs.
    const SimTime now = f.sim.now();
    EXPECT_EQ(f.imds[0]->begin_shrink(2 * rlen), rlen);
    EXPECT_LE(f.imds[0]->region_lease_expiry(ids[0]), now + seconds(1.0));
    EXPECT_GT(f.imds[0]->region_lease_expiry(ids[1]), now + seconds(30.0));
    EXPECT_GT(f.imds[0]->region_lease_expiry(ids[2]), now + seconds(30.0));

    // Only the victim is fenced after the grace runs out.
    co_await f.sim.sleep(seconds(1.5));
    EXPECT_EQ(f.imds[0]->region_count(), 2u);
    EXPECT_TRUE(f.imds[0]->lease_fenced(ids[0]));
    EXPECT_FALSE(f.imds[0]->lease_fenced(ids[1]));
    EXPECT_FALSE(f.imds[0]->lease_fenced(ids[2]));
    EXPECT_EQ(f.imds[0]->metrics().regions_reclaimed, 1u);

    // Shrink-to-zero schedules everything that is left.
    EXPECT_EQ(f.imds[0]->begin_shrink(0), 2 * rlen);
  });
}

TEST(Lease, NearExpiryShrinkTriggersProactiveCopy) {
  // Two hosts, one copy: the shrink victim is a sole copy, so the cmd must
  // re-home it through the clone handshake before the fence — the owner's
  // return costs a copy, not a disk fallback.
  LeaseFixture fx(2, LeaseFixture::lease_cmd(),
                  LeaseFixture::lease_imd(true, seconds(4.0), seconds(2.5)));
  fx.run([](LeaseFixture& f) -> Co<void> {
    const Bytes64 rlen = 64_KiB;
    const int rd = co_await f.client.mopen(rlen, f.fd, 0);
    EXPECT_GE(rd, 0);
    net::Buf data = pattern(static_cast<std::size_t>(rlen), 23);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), rlen), rlen);

    const std::size_t src = f.imds[0]->region_count() > 0 ? 0 : 1;
    const std::size_t dst = 1 - src;
    const std::uint64_t victim = f.sole_region(src);
    EXPECT_NE(victim, 0u);
    EXPECT_EQ(f.imds[dst]->region_count(), 0u);

    // Rising pressure on the holder: the victim's lease is capped at the
    // grace window and announced; the cmd clones it to the other host and
    // activates the copy through the write-only/ack/generation handshake.
    const SimTime now = f.sim.now();
    EXPECT_EQ(f.imds[src]->begin_shrink(0), rlen);
    EXPECT_LE(f.imds[src]->region_lease_expiry(victim), now + seconds(2.5));

    co_await f.sim.sleep(seconds(4.0));
    EXPECT_GE(f.cmd.metrics().proactive_copies, 1u);
    EXPECT_EQ(f.imds[src]->metrics().regions_reclaimed, 1u);
    EXPECT_TRUE(f.imds[src]->lease_fenced(victim));
    EXPECT_EQ(f.imds[dst]->region_count(), 1u);

    // The renewal reject pruned the fenced copy from the directory: one
    // copy remains, on the surviving host.
    const auto snap = f.cmd.rd_snapshot();
    EXPECT_EQ(snap.size(), 1u);
    if (snap.empty()) co_return;
    EXPECT_EQ(snap.front().second.host, f.imds[dst]->node());
    EXPECT_GE(f.cmd.metrics().lease_renew_rejects, 1u);

    // Reads keep landing in remote memory, byte-exact — never disk.
    net::Buf back(static_cast<std::size_t>(rlen), 0);
    const auto rr = co_await f.client.mread_ex(rd, 0, back.data(), rlen);
    EXPECT_EQ(rr.n, rlen);
    EXPECT_TRUE(rr.disk_ranges.empty());
    EXPECT_EQ(back, data);
    EXPECT_TRUE(f.client.active(rd));
  });
  EXPECT_EQ(fx.client.metrics().disk_fallbacks, 0u);
}

TEST(Lease, OffPathGrantsNothingAndExportsNothing) {
  // lease_epochs off must be byte-identical to the pre-lease daemons: no
  // lease state on regions, no lease wire traffic, and none of the new
  // metric names in either snapshot (a scrape diff would flag them).
  LeaseFixture fx(1, LeaseFixture::lease_cmd(false),
                  LeaseFixture::lease_imd(false));
  fx.run([](LeaseFixture& f) -> Co<void> {
    const Bytes64 rlen = 64_KiB;
    const int rd = co_await f.client.mopen(rlen, f.fd, 0);
    EXPECT_GE(rd, 0);
    net::Buf data = pattern(static_cast<std::size_t>(rlen), 29);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), rlen), rlen);
    const std::uint64_t id = f.sole_region();

    // No lease granted, and nothing ever expires.
    EXPECT_EQ(f.imds[0]->region_lease_expiry(id), 0);
    co_await f.sim.sleep(seconds(12.0));
    EXPECT_EQ(f.imds[0]->region_count(), 1u);
    EXPECT_EQ(f.imds[0]->metrics().regions_reclaimed, 0u);
    EXPECT_EQ(f.imds[0]->metrics().leases_renewed, 0u);
    EXPECT_EQ(f.cmd.metrics().lease_renewals, 0u);
    EXPECT_EQ(f.cmd.metrics().proactive_copies, 0u);

    const auto imd_snap = f.imds[0]->metrics_snapshot();
    EXPECT_EQ(imd_snap.find("imd.regions_reclaimed"), nullptr);
    EXPECT_EQ(imd_snap.find("imd.bytes_reclaimed"), nullptr);
    EXPECT_EQ(imd_snap.find("imd.leases_renewed"), nullptr);
    EXPECT_EQ(imd_snap.find("imd.fenced_regions"), nullptr);
    const auto cmd_snap = f.cmd.metrics_snapshot();
    EXPECT_EQ(cmd_snap.find("cmd.lease_renewals"), nullptr);
    EXPECT_EQ(cmd_snap.find("cmd.lease_renew_rejects"), nullptr);
    EXPECT_EQ(cmd_snap.find("cmd.lease_expiry_notices"), nullptr);
    EXPECT_EQ(cmd_snap.find("cmd.proactive_copies"), nullptr);
    EXPECT_EQ(cmd_snap.find("cmd.pending_expiry_notices"), nullptr);
  });
}

TEST(Lease, KStatsScrapeDuringGradedPressureShrinkWindow) {
  // A wire scrape racing an incremental shrink must see a consistent story:
  // the shrink counters appear the moment the pressure bites, the lease
  // gauges stay present throughout the grace window, and the scrape itself
  // never wedges on a host that is busy fencing.
  cluster::ClusterConfig cfg;
  cfg.imd_hosts = 3;
  cfg.imd_pool = 4_MiB;
  cfg.local_cache = 256_KiB;
  cfg.page_cache_dodo = 128_KiB;
  cfg.seed = 31;
  cfg.materialize = false;  // phantom data: the assertions are on counters
  cfg.imd.lease_epochs = true;
  cfg.cmd.lease_epochs = true;
  cfg.cmd.keepalive_interval = millis(500);
  cfg.imd.lease_ttl = seconds(3.0);
  cfg.imd.lease_grace = seconds(1.5);
  cluster::Cluster c(cfg);
  const Bytes64 len = 1_MiB;
  const int fd = c.create_dataset("data", len);
  obs::MetricsSnapshot before, during, after;
  c.run_app([&](cluster::Cluster& cl) -> Co<void> {
    auto* d = cl.dodo();
    const int rd = co_await d->mopen(len, fd, 0);
    EXPECT_GE(rd, 0);
    co_await d->mwrite(rd, 0, nullptr, len);
    before = co_await cl.scrape_cluster();
    for (int h = 0; h < cfg.imd_hosts; ++h) {
      co_await cl.pressure_host(h, 1, 0.25);  // kRising, keep 25%
    }
    // Inside the grace window: victims are capped but not yet fenced.
    during = co_await cl.scrape_cluster();
    co_await cl.sim().sleep(seconds(6.0));  // ttl + grace: fences resolved
    after = co_await cl.scrape_cluster();
    co_await d->mread(rd, 0, nullptr, 64_KiB);
    co_await d->mclose(rd);
  });
  EXPECT_EQ(before.counter_value("rmd.pressure_shrinks"), 0u);
  EXPECT_GT(during.counter_value("rmd.pressure_shrinks"), 0u);
  EXPECT_GT(during.counter_value("cmd.lease_expiry_notices"), 0u);
  // The lease gauges survive the whole window (present, not torn down).
  for (const auto* snap : {&before, &during, &after}) {
    EXPECT_NE(snap->find("imd.pool_used_bytes"), nullptr);
    EXPECT_NE(snap->find("imd.fenced_regions"), nullptr);
  }
  // Counters only move forward across the window's scrapes.
  for (const char* name :
       {"rmd.pressure_shrinks", "cmd.lease_expiry_notices",
        "imd.regions_reclaimed"}) {
    EXPECT_GE(during.counter_value(name), before.counter_value(name)) << name;
    EXPECT_GE(after.counter_value(name), during.counter_value(name)) << name;
  }
}

}  // namespace
}  // namespace dodo::runtime
