// Tests for the disk substrate: service-time model, page cache + readahead,
// stores, and the simulated filesystem.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/units.hpp"
#include "disk/disk_model.hpp"
#include "disk/file_cache.hpp"
#include "disk/filesystem.hpp"
#include "disk/store.hpp"
#include "sim/simulator.hpp"

namespace dodo::disk {
namespace {

using sim::Co;
using sim::Simulator;

TEST(DiskModel, SequentialIsTransferOnly) {
  Simulator sim;
  DiskModel d(sim);
  // Prime head position at 0 with a first access, then contiguous.
  SimTime t1 = 0, t2 = 0;
  sim.spawn([](Simulator& s, DiskModel& dm, SimTime& a, SimTime& b) -> Co<void> {
    co_await dm.access(0, 64_KiB, false);
    a = s.now();
    co_await dm.access(64_KiB, 64_KiB, false);
    b = s.now();
  }(sim, d, t1, t2));
  sim.run();
  const Duration second = t2 - t1;
  EXPECT_NEAR(static_cast<double>(second),
              static_cast<double>(transfer_time(64_KiB, d.params().seq_rate_Bps)),
              1000.0);
  EXPECT_EQ(d.metrics().seq_ops, 1u);
  EXPECT_EQ(d.metrics().rand_ops, 1u);
}

TEST(DiskModel, RandomPaysSeekAndRotation) {
  Simulator sim;
  DiskModel d(sim);
  SimTime total = 0;
  const int n = 2000;
  sim.spawn([](Simulator& s, DiskModel& dm, SimTime& t, int reps) -> Co<void> {
    for (int i = 0; i < reps; ++i) {
      // Alternate far-apart loci so nothing is contiguous.
      co_await dm.access((i % 2 == 0 ? 0 : 1_GiB) + i * 1_MiB, 8_KiB, false);
    }
    t = s.now();
  }(sim, d, total, n));
  sim.run();
  const double per_req_ms = to_millis(total) / n;
  // seek 6.46 + rot 5.56 + 8 KiB / 4.31 MB/s (1.9 ms) ~= 13.9 ms
  EXPECT_NEAR(per_req_ms, 13.9, 0.8);
}

TEST(DiskModel, WritesSeekSlowerThanReads) {
  Simulator sim;
  DiskModel d(sim);
  const Duration r = d.service_time(1_GiB, 8_KiB, false, 0.5);
  const Duration w = d.service_time(1_GiB, 8_KiB, true, 0.5);
  EXPECT_GT(w, r);
  EXPECT_NEAR(to_millis(w - r), 1.0, 0.05);
}

TEST(DiskModel, DeviceSerializesConcurrentRequests) {
  Simulator sim;
  DiskModel d(sim);
  std::vector<SimTime> done;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](DiskModel& dm, Simulator& s, std::vector<SimTime>& ts,
                 int idx) -> Co<void> {
      co_await dm.access(static_cast<std::int64_t>(idx) * 1_GiB, 8_KiB, false);
      ts.push_back(s.now());
    }(d, sim, done, i));
  }
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  // Completions strictly ordered: no overlap on one spindle.
  EXPECT_LT(done[0], done[1]);
  EXPECT_LT(done[1], done[2]);
}

TEST(Store, MaterializedRoundTrip) {
  MaterializedStore s(1024);
  std::vector<std::uint8_t> in{1, 2, 3, 4, 5};
  s.write(100, 5, in.data());
  std::vector<std::uint8_t> out(5, 0);
  s.read(100, 5, out.data());
  EXPECT_EQ(in, out);
  EXPECT_TRUE(s.materialized());
}

TEST(Store, PatternIsDeterministicAndSeedDependent) {
  PatternStore a(1_MiB, 42), b(1_MiB, 42), c(1_MiB, 43);
  std::vector<std::uint8_t> x(64), y(64), z(64);
  a.read(12345, 64, x.data());
  b.read(12345, 64, y.data());
  c.read(12345, 64, z.data());
  EXPECT_EQ(x, y);
  EXPECT_NE(x, z);
  EXPECT_EQ(x[0], a.byte_at(12345));
  EXPECT_FALSE(a.materialized());
}

TEST(Store, NullBufferReadsAreAccountingOnly) {
  MaterializedStore s(128);
  s.read(0, 64, nullptr);  // must not crash
  s.write(0, 64, nullptr);
}

struct FsFixture {
  Simulator sim;
  SimFilesystem fs;
  explicit FsFixture(FsParams p = {}) : sim(7), fs(sim, p) {}

  template <typename F>
  void run(F&& body) {
    sim.spawn(std::forward<F>(body)(fs));
    sim.run(3600_s);
  }
};

TEST(FileCache, RepeatAccessHits) {
  FsFixture fx;
  fx.fs.create("f", 1_MiB);
  fx.run([](SimFilesystem& fs) -> Co<void> {
    const int fd = fs.open("f", OpenMode::kRead);
    co_await fs.pread(fd, 0, 8192, nullptr);
    co_await fs.pread(fd, 0, 8192, nullptr);
  });
  EXPECT_GT(fx.fs.cache().metrics().miss_pages, 0u);
  EXPECT_GE(fx.fs.cache().metrics().hit_pages, 2u);
}

TEST(FileCache, SequentialStreamTriggersReadahead) {
  FsFixture fx;
  fx.fs.create("f", 4_MiB);
  fx.run([](SimFilesystem& fs) -> Co<void> {
    const int fd = fs.open("f", OpenMode::kRead);
    for (int i = 0; i < 16; ++i) {
      co_await fs.pread(fd, i * 8192, 8192, nullptr);
    }
  });
  EXPECT_GT(fx.fs.cache().metrics().readahead_pages, 0u);
  // Most requested pages after the first request should be readahead hits.
  EXPECT_GT(fx.fs.cache().metrics().hit_pages,
            fx.fs.cache().metrics().miss_pages);
}

TEST(FileCache, EvictsWhenOverCapacity) {
  FsParams p;
  p.cache.capacity = 64 * 1024;
  FsFixture fx(p);
  fx.fs.create("f", 4_MiB);
  fx.run([](SimFilesystem& fs) -> Co<void> {
    const int fd = fs.open("f", OpenMode::kRead);
    for (int i = 0; i < 64; ++i) {
      co_await fs.pread(fd, i * 32768, 8192, nullptr);
    }
  });
  EXPECT_GT(fx.fs.cache().metrics().evicted_pages, 0u);
  EXPECT_LE(fx.fs.cache().resident_bytes(), 64 * 1024);
}

TEST(FileCache, DirtyPagesWriteBackOnSync) {
  FsFixture fx;
  fx.fs.create("f", 1_MiB);
  fx.run([](SimFilesystem& fs) -> Co<void> {
    const int fd = fs.open("f", OpenMode::kReadWrite);
    std::vector<std::uint8_t> buf(32768, 0xAA);
    co_await fs.pwrite(fd, 0, 32768, buf.data());
    co_await fs.fsync(fd);
  });
  EXPECT_EQ(fx.fs.cache().metrics().writeback_pages, 8u);
  EXPECT_GT(fx.fs.disk().metrics().writes, 0u);
}

TEST(Filesystem, PreadReturnsContent) {
  FsFixture fx;
  auto store = std::make_unique<PatternStore>(1_MiB, 5);
  const PatternStore* raw = store.get();
  fx.fs.create("data", 1_MiB, std::move(store));
  std::vector<std::uint8_t> buf(100);
  fx.run([&buf](SimFilesystem& fs) -> Co<void> {
    const int fd = fs.open("data", OpenMode::kRead);
    const Bytes64 n = co_await fs.pread(fd, 5000, 100, buf.data());
    EXPECT_EQ(n, 100);
  });
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(buf[static_cast<size_t>(i)], raw->byte_at(5000 + i));
  }
}

TEST(Filesystem, WriteThenReadRoundTrips) {
  FsFixture fx;
  fx.fs.create("f", 64_KiB);
  std::vector<std::uint8_t> out(10, 0);
  fx.run([&out](SimFilesystem& fs) -> Co<void> {
    const int fd = fs.open("f", OpenMode::kReadWrite);
    std::vector<std::uint8_t> in{9, 8, 7, 6, 5, 4, 3, 2, 1, 0};
    co_await fs.pwrite(fd, 1000, 10, in.data());
    co_await fs.pread(fd, 1000, 10, out.data());
  });
  EXPECT_EQ(out, (std::vector<std::uint8_t>{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}));
}

TEST(Filesystem, ReadsClipAtEof) {
  FsFixture fx;
  fx.fs.create("f", 100);
  fx.run([](SimFilesystem& fs) -> Co<void> {
    const int fd = fs.open("f", OpenMode::kRead);
    EXPECT_EQ(co_await fs.pread(fd, 90, 50, nullptr), 10);
    EXPECT_EQ(co_await fs.pread(fd, 100, 10, nullptr), 0);
    EXPECT_EQ(co_await fs.pread(fd, 200, 10, nullptr), 0);
  });
}

TEST(Filesystem, WriteToReadOnlyFdFails) {
  FsFixture fx;
  fx.fs.create("f", 100);
  fx.run([](SimFilesystem& fs) -> Co<void> {
    const int fd = fs.open("f", OpenMode::kRead);
    EXPECT_EQ(co_await fs.pwrite(fd, 0, 10, nullptr), -1);
  });
}

TEST(Filesystem, BadFdAndBadName) {
  FsFixture fx;
  EXPECT_EQ(fx.fs.open("missing", OpenMode::kRead), -1);
  EXPECT_FALSE(fx.fs.fd_valid(77));
  fx.run([](SimFilesystem& fs) -> Co<void> {
    EXPECT_EQ(co_await fs.pread(99, 0, 10, nullptr), -1);
  });
}

TEST(Filesystem, InodesAreStableAndDistinct) {
  FsFixture fx;
  fx.fs.create("a", 10);
  fx.fs.create("b", 10);
  const int fa = fx.fs.open("a", OpenMode::kRead);
  const int fb = fx.fs.open("b", OpenMode::kRead);
  const int fa2 = fx.fs.open("a", OpenMode::kRead);
  EXPECT_NE(fx.fs.inode_of(fa), fx.fs.inode_of(fb));
  EXPECT_EQ(fx.fs.inode_of(fa), fx.fs.inode_of(fa2));
  fx.fs.close(fa);
  EXPECT_FALSE(fx.fs.fd_valid(fa));
  EXPECT_TRUE(fx.fs.fd_valid(fa2));
}

}  // namespace
}  // namespace dodo::disk
