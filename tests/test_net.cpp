// Tests for the simulated network: codec, transport timing model, socket
// lifecycle, and the bulk blast + selective-NACK protocol of §4.4.
#include <gtest/gtest.h>

#include <numeric>
#include <optional>
#include <set>

#include "common/units.hpp"
#include "net/bulk.hpp"
#include "net/codec.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"

namespace dodo::net {
namespace {

using sim::Co;
using sim::Simulator;

TEST(Codec, RoundTripsAllWidths) {
  Buf buf;
  Writer w(buf);
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.str("dodo");
  Reader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.str(), "dodo");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Codec, TruncatedInputMarksReaderBad) {
  Buf buf;
  Writer w(buf);
  w.u16(7);
  Reader r(buf);
  (void)r.u64();  // wider than available
  EXPECT_FALSE(r.ok());
}

TEST(Codec, StringWithBogusLengthIsRejected) {
  Buf buf;
  Writer w(buf);
  w.u32(1000000);  // claims a megabyte that isn't there
  Reader r(buf);
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(NetParams, FragmentMath) {
  auto udp = NetParams::udp();
  EXPECT_EQ(udp.fragments_of(0), 1);
  EXPECT_EQ(udp.fragments_of(1), 1);
  EXPECT_EQ(udp.fragments_of(1500), 1);
  EXPECT_EQ(udp.fragments_of(1501), 2);
  EXPECT_EQ(udp.fragments_of(8192), 6);
}

TEST(NetParams, UnetHasLowerSmallMessageOverheadThanUdp) {
  Simulator sim;
  Network udp(sim, NetParams::udp(), 2);
  Network unet(sim, NetParams::unet(), 2);
  const Bytes64 small = 64;
  const Duration udp_cost = udp.send_cpu_time(small) + udp.wire_time(small) +
                            udp.recv_cpu_time(small);
  const Duration unet_cost = unet.send_cpu_time(small) +
                             unet.wire_time(small) + unet.recv_cpu_time(small);
  EXPECT_LT(unet_cost, udp_cost / 2);
}

Co<void> echo_server(Socket& sock) {
  for (;;) {
    Message m = co_await sock.recv();
    sock.send(m.src, m.header);
  }
}

TEST(Transport, RoundTripDeliversPayload) {
  Simulator sim;
  Network net(sim, NetParams::unet(), 3);
  auto server = net.open(1, 100);
  auto client = net.open(2, 100);
  sim.spawn(echo_server(*server));
  std::optional<Message> got;
  sim.spawn([](Simulator&, Socket& c, std::optional<Message>& g) -> Co<void> {
    c.send(Endpoint{1, 100}, Buf{1, 2, 3});
    g = co_await c.recv();
  }(sim, *client, got));
  sim.run(1_s);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->header, (Buf{1, 2, 3}));
  EXPECT_EQ(got->src, (Endpoint{1, 100}));
}

TEST(Transport, DeliveryTakesModeledTime) {
  Simulator sim;
  Network net(sim, NetParams::udp(), 2);
  auto a = net.open(0, 10);
  auto b = net.open(1, 10);
  SimTime arrived = -1;
  sim.spawn([](Simulator& s, Socket& sock, SimTime& t) -> Co<void> {
    (void)co_await sock.recv();
    t = s.now();
  }(sim, *b, arrived));
  Buf big(8192, 0xCC);
  a->send(Endpoint{1, 10}, Buf{}, big);
  sim.run(1_s);
  ASSERT_GT(arrived, 0);
  const Duration expected = net.send_cpu_time(8192) + net.wire_time(8192) +
                            net.params().propagation +
                            net.recv_cpu_time(8192);
  EXPECT_EQ(arrived, expected);
}

TEST(Transport, BackToBackSendsSerializeOnTxLink) {
  Simulator sim;
  Network net(sim, NetParams::unet(), 2);
  auto a = net.open(0, 10);
  auto b = net.open(1, 10);
  std::vector<SimTime> arrivals;
  sim.spawn([](Simulator& s, Socket& sock, std::vector<SimTime>& ts) -> Co<void> {
    for (int i = 0; i < 2; ++i) {
      (void)co_await sock.recv();
      ts.push_back(s.now());
    }
  }(sim, *b, arrivals));
  Buf pkt(1400, 0);
  a->send(Endpoint{1, 10}, Buf{}, pkt);
  a->send(Endpoint{1, 10}, Buf{}, pkt);
  sim.run(1_s);
  ASSERT_EQ(arrivals.size(), 2u);
  // Second packet waits for the first to clear the wire: the gap must be at
  // least the wire time of one packet.
  EXPECT_GE(arrivals[1] - arrivals[0], net.wire_time(1400));
}

TEST(Transport, ClosedPortDropsDatagrams) {
  Simulator sim;
  Network net(sim, NetParams::unet(), 2);
  auto a = net.open(0, 10);
  { auto b = net.open(1, 10); }  // bound then closed
  a->send(Endpoint{1, 10}, Buf{9});
  sim.run(1_s);
  EXPECT_EQ(net.metrics().datagrams_dropped, 1u);
  EXPECT_EQ(net.metrics().datagrams_delivered, 0u);
}

TEST(Transport, DownNodeEatsTraffic) {
  Simulator sim;
  Network net(sim, NetParams::unet(), 2);
  auto a = net.open(0, 10);
  auto b = net.open(1, 10);
  net.set_node_up(1, false);
  a->send(Endpoint{1, 10}, Buf{1});
  sim.run(1_s);
  EXPECT_EQ(net.metrics().datagrams_delivered, 0u);
  EXPECT_EQ(net.metrics().datagrams_dropped, 1u);
}

TEST(Transport, EphemeralPortsAreUnique) {
  Simulator sim;
  Network net(sim, NetParams::unet(), 2);
  auto s1 = net.open_ephemeral(0);
  auto s2 = net.open_ephemeral(0);
  auto s3 = net.open_ephemeral(1);
  EXPECT_NE(s1->local().port, s2->local().port);
  EXPECT_EQ(s1->local().node, 0u);
  EXPECT_EQ(s3->local().node, 1u);
}

TEST(Transport, LossInjectionDropsRoughlyTheConfiguredFraction) {
  Simulator sim;
  auto params = NetParams::unet();
  params.loss_rate = 0.25;
  Network net(sim, params, 2);
  auto a = net.open(0, 10);
  auto b = net.open(1, 10);
  for (int i = 0; i < 4000; ++i) a->send(Endpoint{1, 10}, Buf{1});
  sim.run(100_s);
  const double lost = static_cast<double>(net.metrics().datagrams_lost);
  EXPECT_NEAR(lost / 4000.0, 0.25, 0.05);
}

// --------------------------------------------------------------------------
// Bulk protocol
// --------------------------------------------------------------------------

Buf make_pattern(std::size_t n) {
  Buf b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 2654435761u) >> 13);
  }
  return b;
}

struct BulkFixtureResult {
  Status send_status;
  BulkRecvResult recv;
};

BulkFixtureResult run_bulk(NetParams params, std::size_t len,
                           BulkParams bulk = {}, bool phantom = false,
                           std::uint64_t seed = 1) {
  Simulator sim(seed);
  Network net(sim, std::move(params), 2);
  auto tx = net.open_ephemeral(0);
  auto rx = net.open_ephemeral(1);
  Buf data = phantom ? Buf{} : make_pattern(len);
  BulkFixtureResult out;
  sim.spawn([](Socket& rxs, BulkParams bp, BulkRecvResult& r) -> Co<void> {
    r = co_await bulk_recv(rxs, 77, bp);
  }(*rx, bulk, out.recv));
  sim.spawn([](Socket& txs, Endpoint dst, BodyView body, BulkParams bp,
               Status& st) -> Co<void> {
    st = co_await bulk_send(txs, dst, 77, body, bp);
  }(*tx, rx->local(),
    BodyView{phantom ? nullptr : data.data(), static_cast<Bytes64>(len)},
    bulk, out.send_status));
  sim.run(300_s);
  if (!phantom) {
    EXPECT_EQ(out.recv.data.size(), out.recv.status.is_ok() ? len : 0u);
    if (out.recv.status.is_ok()) {
      EXPECT_EQ(out.recv.data, data);
    }
  }
  return out;
}

TEST(Bulk, SingleChunkTransfer) {
  auto r = run_bulk(NetParams::unet(), 512);
  EXPECT_TRUE(r.send_status.is_ok()) << r.send_status.to_string();
  EXPECT_TRUE(r.recv.status.is_ok()) << r.recv.status.to_string();
  EXPECT_EQ(r.recv.size, 512);
}

TEST(Bulk, ZeroLengthTransfer) {
  auto r = run_bulk(NetParams::unet(), 0);
  EXPECT_TRUE(r.send_status.is_ok());
  EXPECT_TRUE(r.recv.status.is_ok());
  EXPECT_EQ(r.recv.size, 0);
}

TEST(Bulk, MultiWindowTransferUnet) {
  // 1 MiB over 1472-byte packets with a 256 KiB window: many rounds.
  auto r = run_bulk(NetParams::unet(), 1024 * 1024);
  EXPECT_TRUE(r.send_status.is_ok()) << r.send_status.to_string();
  EXPECT_TRUE(r.recv.status.is_ok()) << r.recv.status.to_string();
}

TEST(Bulk, MultiWindowTransferUdp) {
  auto r = run_bulk(NetParams::udp(), 1024 * 1024);
  EXPECT_TRUE(r.send_status.is_ok()) << r.send_status.to_string();
  EXPECT_TRUE(r.recv.status.is_ok()) << r.recv.status.to_string();
}

TEST(Bulk, PhantomBodyKeepsLogicalSize) {
  auto r = run_bulk(NetParams::unet(), 300000, {}, /*phantom=*/true);
  EXPECT_TRUE(r.send_status.is_ok());
  EXPECT_TRUE(r.recv.status.is_ok());
  EXPECT_EQ(r.recv.size, 300000);
  EXPECT_TRUE(r.recv.data.empty());
}

TEST(Bulk, SurvivesHeavyPacketLoss) {
  auto params = NetParams::unet();
  params.loss_rate = 0.10;
  BulkParams bp;
  bp.max_retries = 50;
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    auto r = run_bulk(params, 200000, bp, false, seed);
    EXPECT_TRUE(r.send_status.is_ok()) << r.send_status.to_string();
    EXPECT_TRUE(r.recv.status.is_ok()) << r.recv.status.to_string();
  }
}

TEST(Bulk, SurvivesLossOnUdpToo) {
  auto params = NetParams::udp();
  params.loss_rate = 0.05;
  BulkParams bp;
  bp.max_retries = 50;
  auto r = run_bulk(params, 500000, bp, false, 7);
  EXPECT_TRUE(r.send_status.is_ok()) << r.send_status.to_string();
  EXPECT_TRUE(r.recv.status.is_ok()) << r.recv.status.to_string();
}

TEST(Bulk, SenderTimesOutWhenReceiverAbsent) {
  Simulator sim;
  Network net(sim, NetParams::unet(), 2);
  auto tx = net.open_ephemeral(0);
  Buf data = make_pattern(100000);
  Status st;
  sim.spawn([](Socket& txs, BodyView body, Status& s) -> Co<void> {
    s = co_await bulk_send(txs, Endpoint{1, 999}, 5, body);
  }(*tx, BodyView{data.data(), static_cast<Bytes64>(data.size())}, st));
  sim.run(300_s);
  EXPECT_EQ(st.code(), Err::kTimeout);
}

TEST(Bulk, ReceiverTimesOutWhenSenderAbsent) {
  Simulator sim;
  Network net(sim, NetParams::unet(), 2);
  auto rx = net.open_ephemeral(1);
  BulkRecvResult r;
  sim.spawn([](Socket& rxs, BulkRecvResult& out) -> Co<void> {
    out = co_await bulk_recv(rxs, 5);
  }(*rx, r));
  sim.run(300_s);
  EXPECT_EQ(r.status.code(), Err::kTimeout);
}

TEST(Bulk, ReceiverDeathMidTransferTimesOutSender) {
  Simulator sim;
  Network net(sim, NetParams::unet(), 2);
  auto tx = net.open_ephemeral(0);
  auto rx = net.open_ephemeral(1);
  Buf data = make_pattern(2 * 1024 * 1024);
  Status st;
  BulkRecvResult rr;
  sim.spawn([](Socket& rxs, BulkRecvResult& out) -> Co<void> {
    out = co_await bulk_recv(rxs, 5);
  }(*rx, rr));
  sim.spawn([](Socket& txs, Endpoint dst, BodyView body, Status& s) -> Co<void> {
    s = co_await bulk_send(txs, dst, 5, body);
  }(*tx, rx->local(), BodyView{data.data(), static_cast<Bytes64>(data.size())},
    st));
  // Kill the receiving node partway through the transfer.
  sim.schedule(100_ms, [&] { net.set_node_up(1, false); });
  sim.run(300_s);
  EXPECT_EQ(st.code(), Err::kTimeout);
}

/// run_bulk with separate sender/receiver protocol counters, as the real
/// endpoints keep them (one BulkStats per imd/client, not per transfer).
BulkFixtureResult run_bulk_with_stats(Network& net, Simulator& sim,
                                      std::size_t len, BulkParams bulk,
                                      BulkStats& tx_stats,
                                      BulkStats& rx_stats) {
  auto tx = net.open_ephemeral(0);
  auto rx = net.open_ephemeral(1);
  Buf data = make_pattern(len);
  BulkFixtureResult out;
  BulkParams rx_bulk = bulk;
  rx_bulk.stats = &rx_stats;
  BulkParams tx_bulk = bulk;
  tx_bulk.stats = &tx_stats;
  sim.spawn([](Socket& rxs, BulkParams bp, BulkRecvResult& r) -> Co<void> {
    r = co_await bulk_recv(rxs, 77, bp);
  }(*rx, rx_bulk, out.recv));
  sim.spawn([](Socket& txs, Endpoint dst, BodyView body, BulkParams bp,
               Status& st) -> Co<void> {
    st = co_await bulk_send(txs, dst, 77, body, bp);
  }(*tx, rx->local(), BodyView{data.data(), static_cast<Bytes64>(len)},
    tx_bulk, out.send_status));
  sim.run(300_s);
  if (out.recv.status.is_ok()) {
    EXPECT_EQ(out.recv.data, data);
  }
  return out;
}

TEST(Bulk, SingleChunkSkipsNegotiation) {
  // A body that fits one datagram takes the fast path: no credit request,
  // no window rounds — one data packet and one ack.
  Simulator sim(1);
  Network net(sim, NetParams::unet(), 2);
  BulkStats txs, rxs;
  auto r = run_bulk_with_stats(net, sim, 512, {}, txs, rxs);
  ASSERT_TRUE(r.send_status.is_ok()) << r.send_status.to_string();
  ASSERT_TRUE(r.recv.status.is_ok()) << r.recv.status.to_string();
  EXPECT_EQ(txs.single_packet_sends.value(), 1u);
  EXPECT_EQ(txs.credit_requests.value(), 0u);
  EXPECT_EQ(txs.rounds.value(), 1u);  // straight to a one-chunk blast
  EXPECT_EQ(txs.chunks_sent.value(), 1u);
  EXPECT_EQ(txs.chunks_retransmitted.value(), 0u);
  EXPECT_EQ(txs.bytes_sent.value(), 512u);
  EXPECT_EQ(rxs.recvs_completed.value(), 1u);
  EXPECT_EQ(rxs.bytes_received.value(), 512u);
  EXPECT_EQ(rxs.nacks_sent.value(), 0u);
}

TEST(Bulk, WindowSmallerThanChunkIsClampedUp) {
  // A receiver advertising less than one chunk of window would deadlock the
  // blast protocol; it must clamp the grant up to one chunk (counted), and
  // the transfer then proceeds one chunk per round.
  Simulator sim(1);
  Network net(sim, NetParams::unet(), 2);
  const Bytes64 chunk = NetParams::unet().max_datagram - 49;
  BulkParams bp;
  bp.window_bytes = 64;  // far below one chunk
  BulkStats txs, rxs;
  const std::size_t len = static_cast<std::size_t>(4 * chunk);
  auto r = run_bulk_with_stats(net, sim, len, bp, txs, rxs);
  ASSERT_TRUE(r.send_status.is_ok()) << r.send_status.to_string();
  ASSERT_TRUE(r.recv.status.is_ok()) << r.recv.status.to_string();
  EXPECT_EQ(r.recv.size, static_cast<Bytes64>(len));
  EXPECT_GE(rxs.window_clamps.value(), 1u);
  EXPECT_EQ(txs.chunks_sent.value(), 4u);
  // One-chunk window -> one round per chunk.
  EXPECT_EQ(txs.rounds.value(), 4u);
  EXPECT_EQ(txs.acks_received.value(), 4u);
}

TEST(Bulk, SelectiveNackRetransmitsExactlyTheMissing) {
  // Deterministically drop the first transmission of data seqs 3 and 7 (and
  // nothing else). The receiver's gap timeout must NACK exactly those two,
  // and the sender must retransmit exactly two chunks — no spray-and-pray
  // full-window re-blast.
  Simulator sim(1);
  Network net(sim, NetParams::unet(), 2);
  std::set<std::uint64_t> to_drop = {3, 7};
  net.set_drop_filter([&to_drop](const Message& m) {
    Reader rd(m.header);
    const std::uint8_t kind = rd.u8();  // bulk Kind: 3 == kData
    const std::uint64_t xfer = rd.u64();
    const std::uint64_t seq = rd.u64();
    if (kind != 3 || xfer != 77 || !rd.ok()) return false;
    return to_drop.erase(seq) > 0;  // first transmission only
  });
  BulkStats txs, rxs;
  const Bytes64 chunk = NetParams::unet().max_datagram - 49;
  const std::size_t len = static_cast<std::size_t>(12 * chunk);
  auto r = run_bulk_with_stats(net, sim, len, {}, txs, rxs);
  ASSERT_TRUE(r.send_status.is_ok()) << r.send_status.to_string();
  ASSERT_TRUE(r.recv.status.is_ok()) << r.recv.status.to_string();
  EXPECT_TRUE(to_drop.empty()) << "planned drops never matched a data seq";
  EXPECT_EQ(txs.chunks_sent.value(), 12u);
  EXPECT_EQ(txs.chunks_retransmitted.value(), 2u);
  EXPECT_EQ(txs.nacks_received.value(), rxs.nacks_sent.value());
  EXPECT_GE(rxs.nacks_sent.value(), 1u);
  // Every byte arrived exactly once at the payload level.
  EXPECT_EQ(rxs.bytes_received.value(), static_cast<std::uint64_t>(len));
  EXPECT_EQ(net.metrics().datagrams_lost, 2u);
}

/// Raw kData frame exactly as net/bulk.cpp lays it out: u8 kind(3), u64
/// xfer, u64 seq, u64 nchunks, i64 offset, i64 chunk_len, i64 total_len;
/// payload rides the body (kData carries no trace pair). Lets tests drive
/// the receiver with hand-paced and duplicated chunks.
void send_raw_chunk(Socket& s, Endpoint dst, std::uint64_t xfer,
                    std::uint64_t seq, std::uint64_t nchunks, const Buf& data,
                    Bytes64 piece) {
  const Bytes64 total = static_cast<Bytes64>(data.size());
  const Bytes64 off = static_cast<Bytes64>(seq) * piece;
  const Bytes64 len = std::min(piece, total - off);
  Buf h;
  Writer w(h);
  w.u8(3);  // kData
  w.u64(xfer);
  w.u64(seq);
  w.u64(nchunks);
  w.i64(off);
  w.i64(len);
  w.i64(total);
  Buf body(data.begin() + static_cast<std::ptrdiff_t>(off),
           data.begin() + static_cast<std::ptrdiff_t>(off + len));
  s.send(dst, std::move(h), std::move(body), len);
}

TEST(Bulk, SlowSenderJustUnderGapDrawsNoNack) {
  // Receive-gap contract: the 20 ms gap timer re-arms on EVERY in-order
  // chunk, so a sender pacing chunks just under the gap is never NACKed —
  // the whole blast lands without a single retransmit request.
  Simulator sim(1);
  Network net(sim, NetParams::unet(), 2);
  auto tx = net.open_ephemeral(0);
  auto rx = net.open_ephemeral(1);
  const Buf data = make_pattern(6 * 512);
  BulkStats rxs;
  BulkParams rbp;
  rbp.stats = &rxs;
  BulkRecvResult rr;
  sim.spawn([](Socket& s, BulkParams bp, BulkRecvResult& out) -> Co<void> {
    out = co_await bulk_recv(s, 77, bp);
  }(*rx, rbp, rr));
  sim.spawn([](Simulator& sm, Socket& s, Endpoint dst,
               const Buf& d) -> Co<void> {
    for (std::uint64_t seq = 0; seq < 6; ++seq) {
      if (seq > 0) co_await sm.sleep(millis(18));  // just under the 20ms gap
      send_raw_chunk(s, dst, 77, seq, 6, d, 512);
    }
    (void)co_await s.recv_for(millis(200));  // drain the final ack
  }(sim, *tx, rx->local(), data));
  sim.run(10_s);
  ASSERT_TRUE(rr.status.is_ok()) << rr.status.to_string();
  EXPECT_EQ(rr.data, data);
  EXPECT_EQ(rxs.nacks_sent.value(), 0u);
}

TEST(Bulk, DuplicateFloodStillDrawsTargetedNack) {
  // The flip side of the re-arm rule: duplicates of a chunk the receiver
  // already holds make no progress and must NOT re-arm the gap timer. A
  // sender re-blasting chunk 0 every 10 ms while withholding 1..3 gets a
  // targeted NACK naming exactly the missing chunks — under the old
  // reset-on-any-datagram behavior the NACK never fired and the transfer
  // sat behind the sender's own (much coarser) round timeout.
  Simulator sim(1);
  Network net(sim, NetParams::unet(), 2);
  auto tx = net.open_ephemeral(0);
  auto rx = net.open_ephemeral(1);
  const Buf data = make_pattern(4 * 512);
  BulkStats rxs;
  BulkParams rbp;
  rbp.stats = &rxs;
  BulkRecvResult rr;
  sim.spawn([](Socket& s, BulkParams bp, BulkRecvResult& out) -> Co<void> {
    out = co_await bulk_recv(s, 88, bp);
  }(*rx, rbp, rr));
  std::vector<std::uint64_t> nacked;
  sim.spawn([](Socket& s, Endpoint dst, const Buf& d,
               std::vector<std::uint64_t>& nk) -> Co<void> {
    send_raw_chunk(s, dst, 88, 0, 4, d, 512);
    for (int i = 0; i < 50 && nk.empty(); ++i) {
      auto m = co_await s.recv_for(millis(10));
      if (!m) {
        send_raw_chunk(s, dst, 88, 0, 4, d, 512);  // duplicate, no progress
        continue;
      }
      Reader r(m->header);
      if (r.u8() == 5 && r.u64() == 88) {  // kNack
        (void)r.u64();                     // trace id
        (void)r.u64();                     // parent span
        const auto n = r.u32();
        for (std::uint32_t k = 0; k < n && r.ok(); ++k) {
          nk.push_back(r.u64());
        }
      }
    }
    for (std::uint64_t seq = 1; seq < 4; ++seq) {
      send_raw_chunk(s, dst, 88, seq, 4, d, 512);
    }
    (void)co_await s.recv_for(millis(200));  // drain the final ack
  }(*tx, rx->local(), data, nacked));
  sim.run(10_s);
  ASSERT_TRUE(rr.status.is_ok()) << rr.status.to_string();
  EXPECT_EQ(rr.data, data);
  EXPECT_GE(rxs.nacks_sent.value(), 1u);
  EXPECT_EQ(nacked, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(Bulk, UnetFasterThanUdpForLargeTransfer) {
  auto time_one = [](NetParams params) {
    Simulator sim;
    Network net(sim, std::move(params), 2);
    auto tx = net.open_ephemeral(0);
    auto rx = net.open_ephemeral(1);
    Buf data = make_pattern(256 * 1024);
    SimTime done = 0;
    BulkRecvResult rr;
    Status st;
    sim.spawn([](Socket& rxs, BulkRecvResult& out, Simulator& s,
                 SimTime& t) -> Co<void> {
      out = co_await bulk_recv(rxs, 5);
      t = s.now();
    }(*rx, rr, sim, done));
    sim.spawn([](Socket& txs, Endpoint dst, BodyView body, Status& s) -> Co<void> {
      s = co_await bulk_send(txs, dst, 5, body);
    }(*tx, rx->local(),
      BodyView{data.data(), static_cast<Bytes64>(data.size())}, st));
    sim.run(300_s);
    EXPECT_TRUE(rr.status.is_ok());
    return done;
  };
  const SimTime unet = time_one(NetParams::unet());
  const SimTime udp = time_one(NetParams::udp());
  EXPECT_LT(unet, udp);
  // Both should still be within a factor of ~3 (same wire).
  EXPECT_LT(udp, unet * 3);
}

}  // namespace
}  // namespace dodo::net
