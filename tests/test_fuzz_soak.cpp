// Opt-in fuzz soak: scans a contiguous seed window with every oracle
// armed and fails on the first violation. Not part of the tier-1 run —
// registered under the `fuzz` ctest configuration and label, so it only
// executes via `ctest -C fuzz -L fuzz` (or tools/fuzz_soak.sh).
//
// Environment knobs (all optional):
//   DODO_FUZZ_SEED_BASE   first seed (default 1)
//   DODO_FUZZ_SEED_COUNT  seeds to run (default 500)
//   DODO_FUZZ_BUGGY       1 = re-introduce the PR-1 reply-cache bug; the
//                         scan then EXPECTS violations (sanity-checks the
//                         fuzzer's teeth, not the product)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fuzz/generator.hpp"
#include "fuzz/runner.hpp"

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
}

}  // namespace

int main() {
  const std::uint64_t base = env_u64("DODO_FUZZ_SEED_BASE", 1);
  const std::uint64_t count = env_u64("DODO_FUZZ_SEED_COUNT", 500);
  const bool buggy = env_u64("DODO_FUZZ_BUGGY", 0) != 0;

  dodo::fuzz::RunOptions opt;
  opt.buggy_imd_reply_cache = buggy;

  std::uint64_t failures = 0;
  std::uint64_t replicated = 0;
  for (std::uint64_t seed = base; seed < base + count; ++seed) {
    const auto s = dodo::fuzz::generate_schedule(seed);
    if (s.replica_count > 1) ++replicated;
    const auto r = dodo::fuzz::run_schedule(s, opt);
    if (!r.ok()) {
      ++failures;
      std::printf("seed=%llu %s%s\n", static_cast<unsigned long long>(seed),
                  r.completed ? "VIOLATION: " : "DID-NOT-FINISH ",
                  r.violation.c_str());
      std::printf("  replay: fuzz_repro --seed %llu%s --shrink\n",
                  static_cast<unsigned long long>(seed),
                  buggy ? " --buggy-imd-cache" : "");
    }
  }
  std::printf("fuzz_soak: %llu/%llu seeds %s (base %llu, %llu replicated)\n",
              static_cast<unsigned long long>(count - failures),
              static_cast<unsigned long long>(count),
              buggy ? "green under deliberate bug" : "green",
              static_cast<unsigned long long>(base),
              static_cast<unsigned long long>(replicated));
  if (buggy) {
    // With the bug planted, a scan this wide MUST catch it; zero failures
    // means the fuzzer has lost its teeth.
    return failures > 0 ? 0 : 1;
  }
  // Any non-trivial window must include replica-aware schedules (~25% of
  // seeds), or the staleness oracle never runs in the soak job at all.
  if (count >= 20 && replicated == 0) {
    std::printf("fuzz_soak: no replica-aware schedules in the window\n");
    return 1;
  }
  return failures == 0 ? 0 : 1;
}
