// Tests for the buddy allocator (the paper's §4.2 fallback design),
// including randomized property sweeps mirroring the first-fit suite.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/buddy_allocator.hpp"

namespace dodo::core {
namespace {

TEST(Buddy, PoolRoundsDownToPowerOfTwo) {
  BuddyAllocator b(1000000, 4096);
  EXPECT_EQ(b.pool_size(), 524288);  // 2^19
  EXPECT_EQ(b.total_free(), 524288);
  EXPECT_EQ(b.largest_free(), 524288);
  EXPECT_TRUE(b.check_invariants());
}

TEST(Buddy, AllocationsRoundUpToPowerOfTwo) {
  BuddyAllocator b(1 << 20, 4096);
  auto a = b.alloc(5000);  // rounds to 8192
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(b.total_free(), (1 << 20) - 8192);
  EXPECT_EQ(b.internal_fragmentation_bytes(), 8192 - 5000);
  EXPECT_TRUE(b.check_invariants());
}

TEST(Buddy, SplitAndEagerMerge) {
  BuddyAllocator b(1 << 16, 4096);
  auto a1 = b.alloc(4096);
  auto a2 = b.alloc(4096);
  ASSERT_TRUE(a1 && a2);
  // Splitting left a ladder of free buddies.
  EXPECT_GT(b.free_block_count(), 1u);
  EXPECT_TRUE(b.free(*a1));
  EXPECT_TRUE(b.free(*a2));
  // Everything merged back to a single maximal block, no coalesce() call.
  EXPECT_EQ(b.free_block_count(), 1u);
  EXPECT_EQ(b.largest_free(), 1 << 16);
  EXPECT_TRUE(b.check_invariants());
}

TEST(Buddy, BuddiesAreAddressAligned) {
  BuddyAllocator b(1 << 18, 4096);
  std::vector<Bytes64> offs;
  for (int i = 0; i < 16; ++i) {
    auto a = b.alloc(16384);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(*a % 16384, 0) << "block " << i;
    offs.push_back(*a);
  }
  EXPECT_FALSE(b.alloc(1).has_value());  // full
  for (const auto o : offs) EXPECT_TRUE(b.free(o));
  EXPECT_EQ(b.largest_free(), 1 << 18);
}

TEST(Buddy, RejectsBadRequestsAndDoubleFree) {
  BuddyAllocator b(1 << 16, 4096);
  EXPECT_FALSE(b.alloc(0).has_value());
  EXPECT_FALSE(b.alloc(-3).has_value());
  EXPECT_FALSE(b.alloc((1 << 16) + 1).has_value());
  auto a = b.alloc(100);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(b.free(*a));
  EXPECT_FALSE(b.free(*a));
  EXPECT_FALSE(b.free(12345));
}

TEST(Buddy, NoExternalFragmentationAfterChurn) {
  // The property that motivates buddy: free everything and the pool is
  // whole again without any explicit coalescing pass.
  BuddyAllocator b(1 << 20, 4096);
  Rng rng(3);
  std::vector<Bytes64> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.chance(0.55)) {
      if (auto off = b.alloc(rng.range(1, 64 * 1024))) {
        live.push_back(*off);
      }
    } else {
      const auto idx = static_cast<std::size_t>(rng.below(live.size()));
      EXPECT_TRUE(b.free(live[idx]));
      live[idx] = live.back();
      live.pop_back();
    }
  }
  for (const auto off : live) EXPECT_TRUE(b.free(off));
  EXPECT_EQ(b.free_block_count(), 1u);
  EXPECT_EQ(b.largest_free(), 1 << 20);
  EXPECT_EQ(b.internal_fragmentation_bytes(), 0);
}

class BuddyRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BuddyRandomized, InvariantsHoldUnderRandomWorkload) {
  Rng rng(GetParam());
  BuddyAllocator b(1 << 20, 1024);
  std::vector<std::pair<Bytes64, Bytes64>> live;  // offset, rounded len
  for (int step = 0; step < 2500; ++step) {
    if (live.empty() || rng.chance(0.6)) {
      const Bytes64 len = rng.range(1, 32 * 1024);
      if (auto off = b.alloc(len)) {
        for (const auto& [o, l] : live) {
          EXPECT_FALSE(*off < o + l && o < *off + len)
              << "overlap at step " << step;
        }
        // Track the rounded size for overlap checking.
        Bytes64 rounded = 1024;
        while (rounded < len) rounded *= 2;
        live.emplace_back(*off, rounded);
      }
    } else {
      const auto idx = static_cast<std::size_t>(rng.below(live.size()));
      EXPECT_TRUE(b.free(live[idx].first));
      live[idx] = live.back();
      live.pop_back();
    }
    if (step % 250 == 0) {
      ASSERT_TRUE(b.check_invariants()) << "step " << step;
    }
  }
  ASSERT_TRUE(b.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyRandomized,
                         ::testing::Values(2, 4, 6, 10, 16, 26));

}  // namespace
}  // namespace dodo::core
