// Calibration pins: these tests tie the simulator's timing models to the
// numbers the paper publishes for its testbed (§5.1). If a model constant
// drifts, these fail before any benchmark silently changes shape.
//
//   disk, app-level through the filesystem (Quantum Fireball ST3.2A):
//     sequential 8/32 KB reads : 7.75 MB/s
//     random 8 KB reads        : 0.57 MB/s
//     random 32 KB reads       : 1.56 MB/s
//   network: U-Net strictly cheaper than UDP per message; both bounded by
//   the 100 Mb/s wire.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "disk/filesystem.hpp"
#include "net/bulk.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"

namespace dodo {
namespace {

using disk::FsParams;
using disk::OpenMode;
using disk::SimFilesystem;
using sim::Co;
using sim::Simulator;

/// Measures app-level bandwidth for `reqs` reads of `req_size`, random or
/// sequential, over a file far larger than the page cache.
double measure_fs_bandwidth(Bytes64 req_size, bool random, int reqs) {
  Simulator sim(42);
  FsParams p;
  p.cache.capacity = 2_MiB;  // cold-cache regime
  SimFilesystem fs(sim, p);
  const Bytes64 file_size = 512_MiB;
  fs.create("data", file_size,
            std::make_unique<disk::PatternStore>(file_size, 1));
  SimTime elapsed = 0;
  sim.spawn([](Simulator& s, SimFilesystem& f, Bytes64 rs, bool rnd, int n,
               SimTime& out) -> Co<void> {
    const int fd = f.open("data", OpenMode::kRead);
    const Bytes64 blocks = 512_MiB / rs;
    Rng rng(99);
    const SimTime start = s.now();
    for (int i = 0; i < n; ++i) {
      const Bytes64 block =
          rnd ? static_cast<Bytes64>(rng.below(static_cast<std::uint64_t>(blocks)))
              : static_cast<Bytes64>(i);
      co_await f.pread(fd, block * rs, rs, nullptr);
    }
    out = s.now() - start;
  }(sim, fs, req_size, random, reqs, elapsed));
  sim.run();
  return static_cast<double>(req_size) * reqs / to_seconds(elapsed);
}

TEST(Calibration, DiskSequential8K) {
  const double bw = measure_fs_bandwidth(8_KiB, false, 4000);
  EXPECT_NEAR(bw / 1e6, 7.75, 0.78);  // +-10%
}

TEST(Calibration, DiskSequential32K) {
  const double bw = measure_fs_bandwidth(32_KiB, false, 2000);
  EXPECT_NEAR(bw / 1e6, 7.75, 0.78);
}

TEST(Calibration, DiskRandom8K) {
  const double bw = measure_fs_bandwidth(8_KiB, true, 4000);
  EXPECT_NEAR(bw / 1e6, 0.57, 0.06);
}

TEST(Calibration, DiskRandom32K) {
  const double bw = measure_fs_bandwidth(32_KiB, true, 2000);
  EXPECT_NEAR(bw / 1e6, 1.56, 0.16);
}

/// One-way bulk-transfer time for `len` bytes under a transport.
SimTime bulk_time(net::NetParams params, Bytes64 len) {
  Simulator sim(1);
  net::Network nw(sim, std::move(params), 2);
  auto tx = nw.open_ephemeral(0);
  auto rx = nw.open_ephemeral(1);
  SimTime done = 0;
  net::BulkRecvResult rr;
  Status st;
  sim.spawn([](net::Socket& s, net::BulkRecvResult& out, Simulator& sm,
               SimTime& t) -> Co<void> {
    out = co_await net::bulk_recv(s, 1);
    t = sm.now();
  }(*rx, rr, sim, done));
  sim.spawn([](net::Socket& s, net::Endpoint dst, Bytes64 n,
               Status& out) -> Co<void> {
    out = co_await net::bulk_send(s, dst, 1, net::BodyView{nullptr, n});
  }(*tx, rx->local(), len, st));
  sim.run(60_s);
  EXPECT_TRUE(rr.status.is_ok());
  return done;
}

TEST(Calibration, UnetBeatsUdpAtEveryTransferSize) {
  for (Bytes64 len : {1_KiB, 8_KiB, 32_KiB, 128_KiB, 1_MiB}) {
    EXPECT_LT(bulk_time(net::NetParams::unet(), len),
              bulk_time(net::NetParams::udp(), len))
        << "len=" << len;
  }
}

TEST(Calibration, BulkThroughputBoundedByWire) {
  // 1 MiB transfers: both transports must land between 50% and 100% of the
  // 12.5 MB/s wire.
  for (auto params : {net::NetParams::unet(), net::NetParams::udp()}) {
    const SimTime t = bulk_time(params, 1_MiB);
    const double bw = static_cast<double>(1_MiB) / to_seconds(t);
    EXPECT_LT(bw, 12.5e6);
    EXPECT_GT(bw, 6.0e6) << params.name;
  }
}

TEST(Calibration, RemoteMemoryBeatsDiskForRandomReads) {
  // The paper's core premise: an 8 KiB random read from remote memory
  // (~1 ms) is an order of magnitude faster than from local disk (~14 ms).
  const SimTime net8k = bulk_time(net::NetParams::unet(), 8_KiB);
  Simulator sim;
  disk::DiskModel d(sim);
  const Duration disk8k = d.service_time(1_GiB, 8_KiB, false, 0.5);
  EXPECT_LT(net8k * 5, disk8k);
}

}  // namespace
}  // namespace dodo
