// Loadgen smoke suite: the open-loop many-client generator is seed-
// reproducible (byte-identical report exports across fresh same-seed
// clusters), completes work against a sharded control plane, and accounts
// every dispatched session exactly once. Labeled `loadgen` (ctest -L
// loadgen / the loadgen test preset).
#include <gtest/gtest.h>

#include <string>

#include "apps/loadgen.hpp"
#include "cluster/cluster.hpp"
#include "common/units.hpp"

namespace dodo {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;

ClusterConfig smoke_cluster(int shards) {
  ClusterConfig cfg;
  cfg.imd_hosts = 4;
  cfg.cmd_shards = shards;
  cfg.imd_pool = 8_MiB;
  cfg.local_cache = 1_MiB;
  cfg.page_cache_dodo = 256_KiB;
  cfg.materialize = false;  // loadgen sessions read with null buffers
  cfg.seed = 99;
  return cfg;
}

apps::LoadgenConfig smoke_loadgen() {
  apps::LoadgenConfig lc;
  lc.clients = 30;
  lc.offered_rate = 400;
  lc.duration = 500 * kMillisecond;
  lc.slots_per_client = 4;
  lc.region = 32_KiB;
  lc.read_len = 4_KiB;
  lc.seed = 99;
  return lc;
}

apps::LoadgenReport run_once(int shards) {
  Cluster c(smoke_cluster(shards));
  apps::LoadGenerator gen(c, smoke_loadgen());
  apps::LoadgenReport rep;
  c.run_app([&gen, &rep](Cluster&) -> sim::Co<void> {
    co_await gen.run(&rep);
  });
  return rep;
}

TEST(Loadgen, CompletesSessionsOnShardedCluster) {
  const apps::LoadgenReport rep = run_once(2);
  EXPECT_GT(rep.offered, 0u);
  EXPECT_GT(rep.completed, 0u);
  // Unsaturated smoke load: every session should make it through.
  EXPECT_EQ(rep.failed, 0u);
  EXPECT_EQ(rep.offered, rep.completed + rep.failed);
  EXPECT_EQ(rep.mopen_latency.count(), rep.completed);
  ASSERT_EQ(rep.shards.size(), 2u);
  std::uint64_t per_shard = 0;
  for (const auto& sh : rep.shards) {
    EXPECT_GT(sh.offered, 0u) << "a shard saw no traffic";
    EXPECT_LE(sh.completed, sh.offered);
    per_shard += sh.offered;
  }
  EXPECT_EQ(per_shard, rep.offered);
}

TEST(Loadgen, ReportIsSeedReproducible) {
  const std::string a = run_once(2).snapshot().to_json();
  const std::string b = run_once(2).snapshot().to_json();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("loadgen.sessions_completed"), std::string::npos);
  EXPECT_NE(a.find("loadgen.shard1.peak_inflight"), std::string::npos);
}

TEST(Loadgen, SingleShardStillRuns) {
  const apps::LoadgenReport rep = run_once(1);
  EXPECT_GT(rep.completed, 0u);
  ASSERT_EQ(rep.shards.size(), 1u);
  EXPECT_EQ(rep.shards[0].offered, rep.offered);
}

}  // namespace
}  // namespace dodo
