// Chaos suite: adversarial fault schedules driven by fault::FaultInjector
// against live clusters, proving the paper's central claim end to end —
// remote memory is a clean cache, so *any* failure must degrade to disk
// with byte-exact results (§3.1, §5). Every test
//   1. runs a workload under a named deterministic fault schedule,
//   2. compares the bytes the application observed against a disk-only
//      (use_dodo=false) run of the same workload,
//   3. asserts every planned fault actually fired (no silent no-op
//      injections) at or after its scheduled sim time, and
//   4. audits the cluster for leaked pool bytes after quiesce with
//      fault::leak_report().
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "apps/block_io.hpp"
#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "fault/fault.hpp"
#include "core/wire.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/runner.hpp"
#include "fuzz/schedule.hpp"
#include "obs/critical_path.hpp"
#include "obs/metrics.hpp"

namespace dodo {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using sim::Co;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;

std::uint64_t fnv1a(const std::uint8_t* p, std::size_t n, std::uint64_t h) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

ClusterConfig chaos_config(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.imd_hosts = 4;
  cfg.imd_pool = 4_MiB;
  cfg.local_cache = 512_KiB;
  cfg.page_cache_dodo = 256_KiB;
  cfg.seed = seed;
  return cfg;
}

std::vector<std::uint8_t> fill_dataset(Cluster& c, int fd, Bytes64 size) {
  auto* store = c.fs().store_of_inode(c.fs().inode_of(fd));
  std::vector<std::uint8_t> expect(static_cast<std::size_t>(size));
  for (std::size_t i = 0; i < expect.size(); ++i) {
    expect[i] = static_cast<std::uint8_t>((i * 167 + 43) & 0xff);
  }
  store->write(0, size, expect.data());
  return expect;
}

/// One sequential sweep over the dataset; returns the FNV-1a digest of every
/// byte the application saw. `compute` models per-block application work and
/// keeps the run long enough for a fault schedule to play out.
Co<std::uint64_t> sweep_read(Cluster& c, apps::BlockIo& io, Bytes64 dataset,
                             Bytes64 block, Duration compute) {
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(block));
  std::uint64_t h = kFnvOffset;
  for (Bytes64 off = 0; off < dataset; off += block) {
    const Bytes64 got = co_await io.read(off, buf.data(), block);
    EXPECT_EQ(got, block) << "short read at offset " << off;
    h = fnv1a(buf.data(), static_cast<std::size_t>(block), h);
    if (compute > 0) co_await c.sim().sleep(compute);
  }
  co_return h;
}

/// The digest a disk-only deployment produces for one sweep — the baseline
/// every chaos run must match byte for byte.
std::uint64_t disk_only_digest(Bytes64 dataset, Bytes64 block) {
  ClusterConfig cfg = chaos_config(1);
  cfg.use_dodo = false;
  Cluster c(cfg);
  const int fd = c.create_dataset("data", dataset);
  const auto expect = fill_dataset(c, fd, dataset);
  apps::FsBlockIo io(c.fs(), fd);
  std::uint64_t d = 0;
  c.run_app([&](Cluster& cl) -> Co<void> {
    d = co_await sweep_read(cl, io, dataset, block, 0);
    co_await io.finish(false);
  }, 600_s);
  // Cross-check against a direct digest of the pattern: the disk-only run
  // itself must not corrupt anything.
  std::uint64_t direct = kFnvOffset;
  direct = fnv1a(expect.data(), expect.size(), direct);
  EXPECT_EQ(d, direct);
  return d;
}

/// Scans under faults: keeps sweeping until every planned fault has fired
/// (at least min_sweeps, at most max_sweeps), then quiesces via
/// finish(false). Returns one digest per completed sweep.
std::vector<std::uint64_t> run_scan_under_faults(
    Cluster& c, fault::FaultInjector& inj, Bytes64 dataset, Bytes64 block,
    int min_sweeps, int max_sweeps, Duration compute = millis(5)) {
  const int fd = c.create_dataset("data", dataset);
  fill_dataset(c, fd, dataset);
  apps::DodoBlockIo io(*c.manager(), fd, dataset, block);
  std::vector<std::uint64_t> digests;
  inj.arm();
  c.run_app([&](Cluster& cl) -> Co<void> {
    for (int s = 0; s < max_sweeps && (s < min_sweeps || !inj.done()); ++s) {
      digests.push_back(co_await sweep_read(cl, io, dataset, block, compute));
    }
    co_await io.finish(false);
  }, 3600_s);
  return digests;
}

void expect_digests_match(const std::vector<std::uint64_t>& digests,
                          std::uint64_t baseline) {
  ASSERT_FALSE(digests.empty());
  for (std::size_t i = 0; i < digests.size(); ++i) {
    EXPECT_EQ(digests[i], baseline) << "sweep " << i << " diverged from the "
                                    << "disk-only baseline";
  }
}

/// No silent no-op injections: one log record per planned event, applied in
/// time order, each at or after its scheduled sim time.
void expect_all_faults_fired(const fault::FaultInjector& inj,
                             const fault::FaultPlan& plan) {
  ASSERT_EQ(inj.log().size(), plan.size())
      << "fault(s) never fired; log:\n" << inj.log().dump();
  std::vector<fault::FaultEvent> sorted = plan.events();
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const fault::FaultEvent& x, const fault::FaultEvent& y) {
                     return x.at < y.at;
                   });
  const auto& recs = inj.log().records();
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(static_cast<int>(recs[i].kind), static_cast<int>(sorted[i].kind))
        << "record " << i << ":\n" << inj.log().dump();
    EXPECT_GE(recs[i].t, sorted[i].at)
        << "record " << i << " fired before its scheduled time:\n"
        << inj.log().dump();
  }
}

/// Metric conservation at quiesce: every mread the client admitted resolved
/// into exactly one of remote_hits / mreads_degraded, and every degraded
/// read took at least one fragment-granular disk_fallbacks tick. Valid only
/// after run_app returns (an in-flight mread is counted in the total first).
void expect_mread_conservation(const obs::MetricsSnapshot& s) {
  EXPECT_EQ(s.counter_value("client.mreads_total"),
            s.counter_value("client.remote_hits") +
                s.counter_value("client.mreads_degraded"));
  EXPECT_LE(s.counter_value("client.mreads_degraded"),
            s.counter_value("client.disk_fallbacks"));
}

/// One read's place on the sim timeline, for latency-percentile windows.
struct TimedRead {
  SimTime start = 0;
  Duration latency = 0;
};

/// sweep_read that also records (start, latency) for every block read, so a
/// test can compute exact percentiles over chosen time windows of the run.
Co<std::uint64_t> timed_sweep(Cluster& c, apps::BlockIo& io, Bytes64 dataset,
                              Bytes64 block, Duration compute,
                              std::vector<TimedRead>& timeline) {
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(block));
  std::uint64_t h = kFnvOffset;
  for (Bytes64 off = 0; off < dataset; off += block) {
    const SimTime start = c.sim().now();
    const Bytes64 got = co_await io.read(off, buf.data(), block);
    timeline.push_back({start, c.sim().now() - start});
    EXPECT_EQ(got, block) << "short read at offset " << off;
    h = fnv1a(buf.data(), static_cast<std::size_t>(block), h);
    if (compute > 0) co_await c.sim().sleep(compute);
  }
  co_return h;
}

/// Exact p99 (nth_element over the raw latencies — no histogram bucketing)
/// of the reads whose start time falls in [lo, hi). 0 if the window is empty.
Duration window_p99(const std::vector<TimedRead>& timeline, SimTime lo,
                    SimTime hi) {
  std::vector<Duration> lat;
  for (const auto& r : timeline) {
    if (r.start >= lo && r.start < hi) lat.push_back(r.latency);
  }
  if (lat.empty()) return 0;
  const auto idx = static_cast<std::ptrdiff_t>((lat.size() - 1) * 99 / 100);
  std::nth_element(lat.begin(), lat.begin() + idx, lat.end());
  return lat[static_cast<std::size_t>(idx)];
}

// ---------------------------------------------------------------------------

TEST(Chaos, NoFaultControl) {
  // Control run: the identical scan with no injector armed. Every
  // resilience counter must be exactly zero — if one ticks here, the
  // "chaos is visible in the metrics" assertions in the rest of this suite
  // would be measuring background noise, not the injected faults.
  const Bytes64 dataset = 2_MiB, block = 32_KiB;
  const std::uint64_t baseline = disk_only_digest(dataset, block);

  Cluster c(chaos_config(31));
  const int fd = c.create_dataset("data", dataset);
  fill_dataset(c, fd, dataset);
  apps::DodoBlockIo io(*c.manager(), fd, dataset, block);
  std::vector<std::uint64_t> digests;
  c.run_app([&](Cluster& cl) -> Co<void> {
    for (int s = 0; s < 3; ++s) {
      digests.push_back(
          co_await sweep_read(cl, io, dataset, block, millis(5)));
    }
    co_await io.finish(false);
  }, 3600_s);
  expect_digests_match(digests, baseline);

  const obs::MetricsSnapshot s = c.metrics_snapshot();
  EXPECT_EQ(s.counter_value("client.bulk.chunks_retransmitted"), 0u);
  EXPECT_EQ(s.counter_value("imd.bulk.chunks_retransmitted"), 0u);
  EXPECT_EQ(s.counter_value("client.bulk.nacks_received"), 0u);
  EXPECT_EQ(s.counter_value("client.disk_fallbacks"), 0u);
  EXPECT_EQ(s.counter_value("client.nodes_dropped"), 0u);
  EXPECT_EQ(s.counter_value("net.datagrams_lost"), 0u);
  EXPECT_EQ(s.counter_value("cmd.alloc_suspects"), 0u);
  expect_mread_conservation(s);
  // And the scan really did run on remote memory, not around it.
  EXPECT_GT(s.counter_value("client.remote_hits"), 0u);
}

TEST(Chaos, LossBurstDuringScan) {
  // A 30% correlated loss burst — far beyond the IID rates the transport is
  // tuned for — lands mid-scan. RPC backoff and bulk NACKs absorb what they
  // can; everything else falls back to disk. Bytes must be exact.
  const Bytes64 dataset = 2_MiB, block = 32_KiB;
  const std::uint64_t baseline = disk_only_digest(dataset, block);

  ClusterConfig cfg = chaos_config(21);
  cfg.client.bulk.max_retries = 50;
  Cluster c(cfg);
  fault::FaultPlan plan;
  plan.loss_burst(500_ms, 2_s, 0.30);
  fault::FaultInjector inj(c, plan);

  const auto digests = run_scan_under_faults(c, inj, dataset, block, 3, 200);
  expect_digests_match(digests, baseline);
  expect_all_faults_fired(inj, plan);
  EXPECT_GT(c.network().metrics().datagrams_lost, 0u);
  const obs::MetricsSnapshot s = c.metrics_snapshot();
  // The burst must visibly engage bulk recovery on one side or the other:
  // a receiver gap-timeout NACK, a chunk retransmission, or a sender
  // re-requesting lost credit. (Which one fires depends on which datagram
  // the deterministic schedule drops; NoFaultControl pins them all to zero.)
  EXPECT_GT(s.counter_value("client.bulk.nacks_sent") +
                s.counter_value("imd.bulk.nacks_sent") +
                s.counter_value("client.bulk.chunks_retransmitted") +
                s.counter_value("imd.bulk.chunks_retransmitted") +
                s.counter_value("client.bulk.credit_renegotiations") +
                s.counter_value("imd.bulk.credit_renegotiations"),
            0u);
  expect_mread_conservation(s);
  EXPECT_EQ(fault::leak_report(c), "");
}

TEST(Chaos, PartitionAppFromHalfTheHosts) {
  // The app node loses its links to hosts 0 and 1 for 1.5s while keeping
  // the rest of the cluster. Reads routed at the unreachable hosts time
  // out, their descriptors are dropped, and the data comes from disk (or
  // the surviving hosts) until the partition heals.
  const Bytes64 dataset = 2_MiB, block = 32_KiB;
  const std::uint64_t baseline = disk_only_digest(dataset, block);

  Cluster c(chaos_config(22));
  fault::FaultPlan plan;
  plan.partition(600_ms, 1500_ms, c.app_node(), c.host_node(0))
      .partition(600_ms, 1500_ms, c.app_node(), c.host_node(1));
  fault::FaultInjector inj(c, plan);

  const auto digests = run_scan_under_faults(c, inj, dataset, block, 3, 200);
  expect_digests_match(digests, baseline);
  expect_all_faults_fired(inj, plan);
  EXPECT_GT(c.network().metrics().datagrams_cut, 0u);
  expect_mread_conservation(c.metrics_snapshot());
  EXPECT_EQ(fault::leak_report(c), "");
}

TEST(Chaos, ImdCrashMidBulkThenRestartWithEpochBump) {
  // Host 0 drops off the network at 700ms — most likely mid-transfer with
  // 128 KiB regions — then comes back at 2.5s under a bumped epoch. Stale
  // directory entries from the old epoch must never serve a read.
  const Bytes64 dataset = 2_MiB, block = 128_KiB;
  const std::uint64_t baseline = disk_only_digest(dataset, block);

  Cluster c(chaos_config(23));
  fault::FaultPlan plan;
  plan.imd_crash(700_ms, 0).imd_restart(2500_ms, 0);
  fault::FaultInjector inj(c, plan);

  const auto digests = run_scan_under_faults(c, inj, dataset, block, 4, 200);
  expect_digests_match(digests, baseline);
  expect_all_faults_fired(inj, plan);
  EXPECT_EQ(inj.log().count(fault::FaultKind::kImdRestart), 1u);
  EXPECT_GE(c.dodo()->metrics().nodes_dropped, 1u);
  // The restarted daemon runs under a fresh epoch.
  EXPECT_GE(c.rmd(0).current_epoch(), 2u);
  const obs::MetricsSnapshot s = c.metrics_snapshot();
  // The crash cut the imd out from under live remote regions, so at least
  // one mread had to fall back to the disk path — and the fallback is
  // *visible* in the metrics, not just implied by matching digests.
  EXPECT_GT(s.counter_value("client.disk_fallbacks"), 0u);
  expect_mread_conservation(s);
  EXPECT_EQ(fault::leak_report(c), "");
}

TEST(Chaos, ImdCrashMidBulkKeepsSpanTreeConsistent) {
  // Same crash-mid-transfer schedule, run with tracing on: the host that
  // dies mid-bulk abandons its in-flight server spans, the client's read
  // times out into the disk path, and the retried/failed RPCs replay from
  // reply caches. None of that may corrupt the causal tree — every span
  // quiesce-closed, every recorded parent resolvable and trace-consistent.
  const Bytes64 dataset = 2_MiB, block = 128_KiB;
  const std::uint64_t baseline = disk_only_digest(dataset, block);

  ClusterConfig cfg = chaos_config(29);
  cfg.record_spans = true;
  Cluster c(cfg);
  fault::FaultPlan plan;
  plan.imd_crash(700_ms, 0).imd_restart(2500_ms, 0);
  fault::FaultInjector inj(c, plan);

  const auto digests = run_scan_under_faults(c, inj, dataset, block, 4, 200);
  expect_digests_match(digests, baseline);
  expect_all_faults_fired(inj, plan);
  EXPECT_GT(c.metrics_snapshot().counter_value("client.disk_fallbacks"), 0u);

  // The span-tree oracle audits the full merged trace: ids strictly
  // increasing, no end<start rows after quiesce, parents exist, child
  // traces match, same-track children nest.
  EXPECT_EQ(fuzz::check_span_tree(c), "");
  // The crash produced orphaned bulk transfers, yet the disk-fallback
  // traces still attribute time that tiles the root span exactly.
  const std::vector<obs::TraceSummary> traces =
      obs::analyze_traces(c.merged_spans());
  ASSERT_FALSE(traces.empty());
  bool saw_disk = false;
  for (const obs::TraceSummary& t : traces) {
    EXPECT_EQ(t.segments.total(), t.end - t.start) << t.root_name;
    if (t.segments[obs::Segment::kDisk] > 0) saw_disk = true;
  }
  EXPECT_TRUE(saw_disk);
  EXPECT_EQ(fault::leak_report(c), "");
}

TEST(Chaos, FreeReallocChurnWithDelayedRetransmits) {
  // mopen/push/read/mclose churn over a small set of region keys under a
  // long 25% loss burst: lost replies force rid retransmits of the
  // non-idempotent alloc/free RPCs, which the bounded reply caches must
  // answer from cache. With the old clear-all eviction this schedule
  // orphans regions (pool bytes with no directory entry) and fails frees
  // that succeeded; the leak audit catches both.
  ClusterConfig cfg = chaos_config(24);
  cfg.client.cmd_rpc.retries = 6;
  cfg.client.refraction = millis(200);
  cfg.client.bulk.max_retries = 50;
  Cluster c(cfg);
  const Bytes64 rlen = 64_KiB;
  const int fd = c.create_dataset("churn", 8 * rlen);
  const std::vector<std::uint8_t> file_image = fill_dataset(c, fd, 8 * rlen);

  fault::FaultPlan plan;
  plan.loss_burst(200_ms, 4_s, 0.35);
  fault::FaultInjector inj(c, plan);
  inj.arm();

  int iters = 0, verified = 0;
  bool mismatch = false;
  c.run_app([&](Cluster& cl) -> Co<void> {
    std::vector<std::uint8_t> buf(static_cast<std::size_t>(rlen));
    std::vector<std::uint8_t> back(static_cast<std::size_t>(rlen));
    for (int i = 0; (i < 40 || !inj.done()) && i < 2000; ++i) {
      const Bytes64 foff = static_cast<Bytes64>(i % 8) * rlen;
      const int rd = co_await cl.dodo()->mopen(rlen, fd, foff);
      if (rd < 0) {
        co_await cl.sim().sleep(50_ms);
        continue;
      }
      for (std::size_t j = 0; j < buf.size(); ++j) {
        buf[j] = static_cast<std::uint8_t>((i * 31 + j * 7 + 5) & 0xff);
      }
      const Status st = co_await cl.dodo()->push_remote(rd, 0, buf.data(),
                                                        rlen);
      if (st.is_ok()) {
        const auto rr = co_await cl.dodo()->mread_ex(rd, 0, back.data(), rlen);
        if (rr.n == rlen && rr.filled) {
          ++verified;
          // push_remote never touches disk, so ranges a lost fragment sent
          // back to the backing file legitimately hold the original file
          // bytes, not the pushed ones; splice them into the expectation.
          std::vector<std::uint8_t> expect = buf;
          for (const auto& [roff, rln] : rr.disk_ranges) {
            std::copy_n(file_image.begin() +
                            static_cast<std::ptrdiff_t>(foff + roff),
                        static_cast<std::ptrdiff_t>(rln),
                        expect.begin() + static_cast<std::ptrdiff_t>(roff));
          }
          if (back != expect) mismatch = true;
        }
      }
      (void)co_await cl.dodo()->mclose(rd);
      ++iters;
    }
  }, 3600_s);

  EXPECT_GE(iters, 40);
  EXPECT_GT(verified, 0);
  EXPECT_FALSE(mismatch) << "remote read returned bytes != pushed bytes";
  expect_all_faults_fired(inj, plan);
  EXPECT_GT(c.network().metrics().datagrams_lost, 0u);
  // Lost replies forced rid retransmits of alloc/free, and the imds'
  // bounded reply caches answered at least some of them from cache.
  EXPECT_GT(c.metrics_snapshot().counter_value("imd.reply_cache_hits"), 0u);
  EXPECT_EQ(fault::leak_report(c), "");
}

TEST(Chaos, CmdBlackoutDuringMopen) {
  // The central manager vanishes for 1.2s starting right when the scan's
  // first wave of mopens is in flight. RPC backoff (first attempt 200ms,
  // then 400/800/1600ms) spans the blackout, so most calls ride it out on
  // a retransmit; the rest fail into refraction and the reads come from
  // disk. Either way: exact bytes.
  const Bytes64 dataset = 2_MiB, block = 32_KiB;
  const std::uint64_t baseline = disk_only_digest(dataset, block);

  ClusterConfig cfg = chaos_config(25);
  cfg.client.refraction = millis(500);
  Cluster c(cfg);
  fault::FaultPlan plan;
  plan.cmd_blackout(400_ms, 1200_ms);
  fault::FaultInjector inj(c, plan);

  const auto digests = run_scan_under_faults(c, inj, dataset, block, 3, 200);
  expect_digests_match(digests, baseline);
  expect_all_faults_fired(inj, plan);
  expect_mread_conservation(c.metrics_snapshot());
  EXPECT_EQ(fault::leak_report(c), "");
}

TEST(Chaos, CmdRestartMidRun) {
  // Cold stop + warm restart of the manager at 1s. Directory state
  // survives; client RPCs caught in the gap are answered on retransmit
  // once the new socket binds.
  const Bytes64 dataset = 2_MiB, block = 32_KiB;
  const std::uint64_t baseline = disk_only_digest(dataset, block);

  Cluster c(chaos_config(26));
  fault::FaultPlan plan;
  plan.cmd_restart(1_s);
  fault::FaultInjector inj(c, plan);

  const auto digests = run_scan_under_faults(c, inj, dataset, block, 3, 200);
  expect_digests_match(digests, baseline);
  expect_all_faults_fired(inj, plan);
  expect_mread_conservation(c.metrics_snapshot());
  EXPECT_EQ(fault::leak_report(c), "");
}

TEST(Chaos, ReclaimStormBoundsClientDescriptorTable) {
  // Two full reclaim storms: every owner returns at once, all four hosts
  // evict, then get re-recruited. Each storm drops every remote descriptor
  // the client holds; the table must stay bounded by the number of live
  // regions (the old mark-inactive-forever code grew it every storm).
  const Bytes64 dataset = 2_MiB, block = 32_KiB;
  const std::uint64_t baseline = disk_only_digest(dataset, block);

  ClusterConfig cfg = chaos_config(27);
  cfg.client.refraction = millis(300);
  Cluster c(cfg);
  fault::FaultPlan plan;
  plan.host_evict(1000_ms, 0)
      .host_evict(1100_ms, 1)
      .host_evict(1200_ms, 2)
      .host_evict(1300_ms, 3)
      .host_recruit(2500_ms, 0)
      .host_recruit(2500_ms, 1)
      .host_recruit(2600_ms, 2)
      .host_recruit(2600_ms, 3)
      .host_evict(4000_ms, 0)
      .host_evict(4100_ms, 1)
      .host_evict(4200_ms, 2)
      .host_evict(4300_ms, 3)
      .host_recruit(5500_ms, 0)
      .host_recruit(5500_ms, 1)
      .host_recruit(5600_ms, 2)
      .host_recruit(5600_ms, 3);
  fault::FaultInjector inj(c, plan);

  const auto digests = run_scan_under_faults(c, inj, dataset, block, 4, 400);
  expect_digests_match(digests, baseline);
  expect_all_faults_fired(inj, plan);
  EXPECT_GE(c.dodo()->metrics().descriptors_dropped, 1u);
  // drop_node reaps: at most one live descriptor per region of the dataset,
  // no matter how many storms blew through.
  EXPECT_LE(c.dodo()->region_table_size(),
            static_cast<std::size_t>(dataset / block));
  const obs::MetricsSnapshot s = c.metrics_snapshot();
  // Two four-host storms: every evict/recruit shows up on the rmd side.
  EXPECT_GE(s.counter_value("rmd.forced_evictions"), 8u);
  EXPECT_GE(s.counter_value("rmd.forced_recruits"), 8u);
  expect_mread_conservation(s);
  EXPECT_EQ(fault::leak_report(c), "");
}

TEST(Chaos, RollingReclaim) {
  // Owners return one host at a time, 800ms apart, each coming back before
  // the next leaves — the steady-state churn of a real workstation pool.
  const Bytes64 dataset = 2_MiB, block = 32_KiB;
  const std::uint64_t baseline = disk_only_digest(dataset, block);

  ClusterConfig cfg = chaos_config(28);
  cfg.client.refraction = millis(300);
  Cluster c(cfg);
  fault::FaultPlan plan;
  for (int h = 0; h < 4; ++h) {
    const SimTime at = 500_ms + static_cast<SimTime>(h) * 800_ms;
    plan.host_evict(at, h).host_recruit(at + 600_ms, h);
  }
  fault::FaultInjector inj(c, plan);

  const auto digests = run_scan_under_faults(c, inj, dataset, block, 4, 400);
  expect_digests_match(digests, baseline);
  expect_all_faults_fired(inj, plan);
  // Every host ends the run recruited again.
  for (int h = 0; h < 4; ++h) {
    EXPECT_TRUE(c.rmd(h).recruited()) << "host " << h;
  }
  expect_mread_conservation(c.metrics_snapshot());
  EXPECT_EQ(fault::leak_report(c), "");
}

TEST(Chaos, FlashCrowdMassReclamation) {
  // The lease tentpole end to end: a flash crowd of returning owners across
  // an 8-host pool. Six hosts first ramp to rising pressure — incremental
  // coldest-first shrinks whose victims the cmd proactively re-homes onto
  // the two still-idle hosts before their fence — then all six go urgent
  // nearly simultaneously (the paper's binary owner-return) and are
  // released together. Oracle: zero bytes lost (every sweep matches the
  // disk-only baseline), the incremental phase costs copies rather than
  // disk fallbacks, mread p99 during the mass reclamation stays within 5x
  // the steady-state p99, and the quiesced cluster passes both the leak
  // audit and the lease-conservation check.
  const Bytes64 dataset = 2_MiB, block = 32_KiB;
  const std::uint64_t baseline = disk_only_digest(dataset, block);

  ClusterConfig cfg = chaos_config(41);
  cfg.imd_hosts = 8;
  cfg.client.refraction = millis(300);
  cfg.imd.lease_epochs = true;
  cfg.cmd.lease_epochs = true;
  cfg.cmd.keepalive_interval = millis(500);
  // ttl/grace sized to the re-home pipeline: a proactive copy needs ~4
  // keepalive ticks end to end (notice -> clone -> client ack -> activate ->
  // client learns the new home on its next ping), so the grace window must
  // comfortably exceed 4 x 500ms. ttl stays well above grace so healthy
  // renewed regions never trip the near-expiry notice.
  cfg.imd.lease_ttl = seconds(4.0);
  cfg.imd.lease_grace = millis(2500);
  Cluster c(cfg);

  // t in [2.5s, 2.7s]: rising ramps on hosts 0..5, each keeping 40% of its
  // pool bytes — victims fence at ramp+grace unless re-homed first. All six
  // ramps land inside one keepalive window, so every shrink has chosen its
  // victims before the cmd places the first proactive copy (a copy placed
  // on a host that ramps later would be capped again and race a second
  // re-home pipeline against its fence). t ~= 7s: the urgent storm proper.
  // t = 9.5s: the owners leave again and the pool re-recruits.
  fault::FaultPlan plan;
  for (int h = 0; h < 6; ++h) {
    plan.host_pressure(2500_ms + h * 40_ms, h, 1, 0.4);
    plan.host_pressure(7000_ms + h * 10_ms, h, 2, 0.0);
    plan.host_recruit(9500_ms + h * 10_ms, h);
  }
  fault::FaultInjector inj(c, plan);

  const int fd = c.create_dataset("data", dataset);
  fill_dataset(c, fd, dataset);
  apps::DodoBlockIo io(*c.manager(), fd, dataset, block);
  std::vector<TimedRead> timeline;
  std::vector<std::uint64_t> digests;
  obs::MetricsSnapshot mid;  // after the rising-phase fences, before the storm
  bool captured_mid = false;
  inj.arm();
  c.run_app([&](Cluster& cl) -> Co<void> {
    for (int s = 0; s < 400 && (s < 4 || !inj.done()); ++s) {
      digests.push_back(
          co_await timed_sweep(cl, io, dataset, block, millis(5), timeline));
      if (!captured_mid && cl.sim().now() >= 6000_ms &&
          cl.sim().now() < 7000_ms) {
        mid = cl.metrics_snapshot();
        captured_mid = true;
      }
    }
    co_await cl.sim().sleep(2_s);  // keep-alives settle, fenced ids pruned
    co_await io.finish(false);
  }, 3600_s);

  expect_digests_match(digests, baseline);
  expect_all_faults_fired(inj, plan);

  // The rising phase really ran the incremental economics — captured
  // mid-run, because the urgent storm tears those imds (and their
  // counters) down: coldest-first shrinks fired on the pressured hosts,
  // fence-expired victims were reclaimed by live imds, the cmd re-homed
  // near-expiry sole copies before their fence, and no read paid a disk
  // fallback for it.
  ASSERT_TRUE(captured_mid) << "no sweep boundary landed in [6s, 7s)";
  EXPECT_GE(mid.counter_value("rmd.pressure_shrinks"), 1u);
  EXPECT_GE(mid.counter_value("imd.regions_reclaimed"), 1u);
  EXPECT_GE(mid.counter_value("cmd.proactive_copies"), 1u);
  EXPECT_EQ(mid.counter_value("client.disk_fallbacks"), 0u)
      << "incremental reclamation must cost a copy, not a disk fallback";

  const obs::MetricsSnapshot s = c.metrics_snapshot();
  EXPECT_GE(s.counter_value("rmd.pressure_signals"), 12u);  // 6x(rising+urgent)
  EXPECT_GT(s.counter_value("cmd.lease_renewals"), 0u);
  EXPECT_GE(s.counter_value("rmd.forced_evictions"), 6u);
  EXPECT_GE(s.counter_value("rmd.forced_recruits"), 6u);

  // Latency economics: steady state is the fully-recruited warm pool before
  // the first ramp; the mass-reclamation window spans the rising ramps
  // through the last pre-storm fence. The urgent storm itself is the
  // paper's wholesale degradation — bytes exact (asserted above), latency
  // disk-bound by design — so it is excluded from the bounded window.
  const Duration steady = window_p99(timeline, 1500_ms, 2500_ms);
  const Duration reclaim = window_p99(timeline, 2500_ms, 7000_ms);
  ASSERT_GT(steady, 0);
  ASSERT_GT(reclaim, 0);
  EXPECT_LT(reclaim, 5 * steady)
      << "mass-reclamation p99 " << reclaim << " vs steady p99 " << steady;

  expect_mread_conservation(s);
  EXPECT_EQ(fault::leak_report(c), "");
  EXPECT_EQ(fuzz::check_lease_conservation(c), "");
}

TEST(Chaos, CrashMidWriteThroughLeavesDiskAuthoritative) {
  // A write-heavy workload: two overwrite passes plus a read-back, with
  // host 1 crashing mid-pass and never coming back. Write-through and the
  // dirty-flush on close must leave the backing file holding exactly the
  // final pass, identical to what a disk-only deployment writes.
  const Bytes64 dataset = 2_MiB, block = 64_KiB;

  auto run_writes = [&](Cluster& c, apps::BlockIo& io,
                        std::vector<std::uint8_t>& shadow,
                        bool& mismatch) -> Co<void> {
    std::vector<std::uint8_t> buf(static_cast<std::size_t>(block));
    for (int pass = 0; pass < 2; ++pass) {
      for (Bytes64 off = 0; off < dataset; off += block) {
        for (std::size_t j = 0; j < buf.size(); ++j) {
          buf[j] = static_cast<std::uint8_t>(
              (pass * 97 + (off / block) * 13 + j * 31 + 7) & 0xff);
        }
        co_await io.write(off, buf.data(), block);
        std::copy(buf.begin(), buf.end(),
                  shadow.begin() + static_cast<std::ptrdiff_t>(off));
        co_await c.sim().sleep(millis(5));
      }
    }
    for (Bytes64 off = 0; off < dataset; off += block) {
      co_await io.read(off, buf.data(), block);
      if (!std::equal(buf.begin(), buf.end(),
                      shadow.begin() + static_cast<std::ptrdiff_t>(off))) {
        mismatch = true;
      }
    }
    co_await io.finish(false);
  };

  // Disk-only run of the identical request stream.
  std::vector<std::uint8_t> base_shadow(static_cast<std::size_t>(dataset));
  std::vector<std::uint8_t> base_disk(static_cast<std::size_t>(dataset));
  {
    ClusterConfig cfg = chaos_config(29);
    cfg.use_dodo = false;
    Cluster c(cfg);
    const int fd = c.create_dataset("data", dataset);
    fill_dataset(c, fd, dataset);
    apps::FsBlockIo io(c.fs(), fd);
    bool mismatch = false;
    c.run_app([&](Cluster& cl) -> Co<void> {
      co_await run_writes(cl, io, base_shadow, mismatch);
    }, 3600_s);
    EXPECT_FALSE(mismatch);
    c.fs().store_of_inode(c.fs().inode_of(fd))->read(0, dataset,
                                                     base_disk.data());
  }
  EXPECT_EQ(base_disk, base_shadow);

  // Dodo run with the crash.
  Cluster c(chaos_config(29));
  const int fd = c.create_dataset("data", dataset);
  fill_dataset(c, fd, dataset);
  apps::DodoBlockIo io(*c.manager(), fd, dataset, block);
  fault::FaultPlan plan;
  plan.imd_crash(600_ms, 1);
  fault::FaultInjector inj(c, plan);
  inj.arm();
  std::vector<std::uint8_t> shadow(static_cast<std::size_t>(dataset));
  bool mismatch = false;
  c.run_app([&](Cluster& cl) -> Co<void> {
    co_await run_writes(cl, io, shadow, mismatch);
  }, 3600_s);
  EXPECT_FALSE(mismatch) << "read-back diverged from written data";
  expect_all_faults_fired(inj, plan);

  std::vector<std::uint8_t> disk(static_cast<std::size_t>(dataset));
  c.fs().store_of_inode(c.fs().inode_of(fd))->read(0, dataset, disk.data());
  EXPECT_EQ(disk, shadow) << "disk is not authoritative after the crash";
  EXPECT_EQ(disk, base_disk) << "Dodo run diverged from the disk-only run";
  EXPECT_EQ(fault::leak_report(c), "");
}

TEST(Chaos, StripeOwnerKilledMidReadStaysByteExact) {
  // Regions striped 4-wide across the harvested hosts, written through so
  // disk and remote agree, then swept with mreads while one stripe owner is
  // killed. Per-fragment degradation must refetch only the lost fragments
  // from disk — every read stays byte-exact, and disk_fallbacks stays well
  // below "every fragment fell".
  ClusterConfig cfg = chaos_config(33);
  cfg.cmd.stripe_width = 4;
  cfg.cmd.stripe_min_fragment = 4_KiB;  // 64 KiB regions split 4 x 16 KiB
  cfg.client.refraction = millis(100);
  Cluster c(cfg);
  const Bytes64 rlen = 64_KiB;
  const int nslots = 6;
  const int fd = c.create_dataset("data", nslots * rlen);
  fill_dataset(c, fd, nslots * rlen);

  fault::FaultPlan plan;
  plan.imd_crash(400_ms, 1);  // one stripe owner dies and stays dead
  fault::FaultInjector inj(c, plan);
  inj.arm();

  bool mismatch = false;
  int reads_done = 0;
  c.run_app([&](Cluster& cl) -> Co<void> {
    auto* client = cl.dodo();
    std::vector<int> rds(nslots, -1);
    std::vector<std::uint8_t> buf(static_cast<std::size_t>(rlen));
    std::vector<std::uint8_t> back(static_cast<std::size_t>(rlen));
    auto slot_pattern = [&](int s) {
      for (std::size_t j = 0; j < buf.size(); ++j) {
        buf[j] = static_cast<std::uint8_t>((s * 59 + j * 13 + 7) & 0xff);
      }
    };
    for (int sweep = 0; sweep < 60 && (sweep < 8 || !inj.done()); ++sweep) {
      for (int s = 0; s < nslots; ++s) {
        auto& rd = rds[static_cast<std::size_t>(s)];
        if (rd >= 0 && !client->active(rd)) rd = -1;
        if (rd < 0) {
          rd = co_await client->mopen(rlen, fd,
                                      static_cast<Bytes64>(s) * rlen);
          if (rd < 0) {
            co_await cl.sim().sleep(20_ms);
            continue;
          }
          // Write-through: after this, disk and remote hold the same bytes
          // for the slot, so even a degraded read must be byte-exact.
          slot_pattern(s);
          if (co_await client->mwrite(rd, 0, buf.data(), rlen) != rlen ||
              !client->active(rd)) {
            continue;  // remote half died; reopen on the next sweep
          }
        }
        slot_pattern(s);
        const auto rr = co_await client->mread_ex(rd, 0, back.data(), rlen);
        if (rr.n != rlen) continue;  // dropped mid-loop; resync next visit
        ++reads_done;
        if (back != buf) mismatch = true;
        co_await cl.sim().sleep(5_ms);
      }
    }
    // Quiesce: give the keep-alive sweep time to learn the host is dead,
    // then drain every key so the leak audit sees a settled directory.
    co_await cl.sim().sleep(seconds(2.5));
    for (int s = 0; s < nslots; ++s) {
      if (rds[static_cast<std::size_t>(s)] >= 0) {
        (void)co_await client->mclose(rds[static_cast<std::size_t>(s)]);
      }
    }
    co_await cl.sim().sleep(seconds(2.5));
  }, 3600_s);

  EXPECT_FALSE(mismatch) << "degraded read diverged from write-through image";
  EXPECT_GT(reads_done, 20);
  expect_all_faults_fired(inj, plan);

  const obs::MetricsSnapshot s = c.metrics_snapshot();
  // The workload really ran striped, and the crash really degraded reads.
  EXPECT_GT(s.counter_value("cmd.striped_regions"), 0u);
  EXPECT_GT(s.counter_value("client.remote_hits"), 0u);
  const std::uint64_t degraded = s.counter_value("client.mreads_degraded");
  const std::uint64_t falls = s.counter_value("client.disk_fallbacks");
  EXPECT_GT(degraded, 0u);
  // Fragment-granular: each degraded read lost only the dead host's
  // fragment(s), not the whole stripe set — strictly fewer fallback ticks
  // than a whole-stripe loss would produce.
  EXPECT_GE(falls, degraded);
  EXPECT_LT(falls, 4 * degraded);
  expect_mread_conservation(s);
  EXPECT_EQ(fault::leak_report(c), "");
}

TEST(Chaos, StripedImdCutMidMwriteKeepsDiskAuthoritative) {
  // The striped variant of CrashMidWriteThroughLeavesDiskAuthoritative: a
  // stripe owner dies mid write-through. mwrite must still return success
  // (disk took the bytes), drop the now-stale descriptor, and leave the
  // backing file byte-identical to a disk-only run of the same stream.
  const Bytes64 dataset = 2_MiB, block = 64_KiB;

  auto run_writes = [&](Cluster& c, apps::BlockIo& io,
                        std::vector<std::uint8_t>& shadow,
                        bool& mismatch) -> Co<void> {
    std::vector<std::uint8_t> buf(static_cast<std::size_t>(block));
    for (int pass = 0; pass < 2; ++pass) {
      for (Bytes64 off = 0; off < dataset; off += block) {
        for (std::size_t j = 0; j < buf.size(); ++j) {
          buf[j] = static_cast<std::uint8_t>(
              (pass * 89 + (off / block) * 17 + j * 29 + 11) & 0xff);
        }
        co_await io.write(off, buf.data(), block);
        std::copy(buf.begin(), buf.end(),
                  shadow.begin() + static_cast<std::ptrdiff_t>(off));
        co_await c.sim().sleep(millis(5));
      }
    }
    for (Bytes64 off = 0; off < dataset; off += block) {
      co_await io.read(off, buf.data(), block);
      if (!std::equal(buf.begin(), buf.end(),
                      shadow.begin() + static_cast<std::ptrdiff_t>(off))) {
        mismatch = true;
      }
    }
    co_await io.finish(false);
  };

  std::vector<std::uint8_t> base_disk(static_cast<std::size_t>(dataset));
  {
    ClusterConfig cfg = chaos_config(34);
    cfg.use_dodo = false;
    Cluster c(cfg);
    const int fd = c.create_dataset("data", dataset);
    fill_dataset(c, fd, dataset);
    apps::FsBlockIo io(c.fs(), fd);
    std::vector<std::uint8_t> shadow(static_cast<std::size_t>(dataset));
    bool mismatch = false;
    c.run_app([&](Cluster& cl) -> Co<void> {
      co_await run_writes(cl, io, shadow, mismatch);
    }, 3600_s);
    EXPECT_FALSE(mismatch);
    c.fs().store_of_inode(c.fs().inode_of(fd))->read(0, dataset,
                                                     base_disk.data());
  }

  ClusterConfig cfg = chaos_config(34);
  cfg.cmd.stripe_width = 4;
  cfg.cmd.stripe_min_fragment = 4_KiB;
  Cluster c(cfg);
  const int fd = c.create_dataset("data", dataset);
  fill_dataset(c, fd, dataset);
  apps::DodoBlockIo io(*c.manager(), fd, dataset, block);
  fault::FaultPlan plan;
  plan.imd_crash(600_ms, 1);
  fault::FaultInjector inj(c, plan);
  inj.arm();
  std::vector<std::uint8_t> shadow(static_cast<std::size_t>(dataset));
  bool mismatch = false;
  c.run_app([&](Cluster& cl) -> Co<void> {
    co_await run_writes(cl, io, shadow, mismatch);
  }, 3600_s);
  EXPECT_FALSE(mismatch) << "read-back diverged from written data";
  expect_all_faults_fired(inj, plan);

  std::vector<std::uint8_t> disk(static_cast<std::size_t>(dataset));
  c.fs().store_of_inode(c.fs().inode_of(fd))->read(0, dataset, disk.data());
  EXPECT_EQ(disk, shadow) << "disk is not authoritative after the crash";
  EXPECT_EQ(disk, base_disk) << "striped run diverged from the disk-only run";
  const obs::MetricsSnapshot s = c.metrics_snapshot();
  EXPECT_GT(s.counter_value("cmd.striped_regions"), 0u);
  expect_mread_conservation(s);
  EXPECT_EQ(fault::leak_report(c), "");
}

TEST(Chaos, ReplicaOwnerKilledMidReadFailsOverToSibling) {
  // Every region carries two copies on distinct hosts. One copy owner is
  // killed mid-sweep: the picker must fail over to the live sibling, so —
  // unlike the striped test above — no read ever touches the backing file.
  // Byte-exactness still holds, and the leak audit stays clean even though
  // the cmd never hears the host die (crash cuts the network, not the IWD).
  ClusterConfig cfg = chaos_config(35);
  cfg.cmd.replica_count = 2;
  cfg.client.refraction = millis(100);
  Cluster c(cfg);
  const Bytes64 rlen = 64_KiB;
  const int nslots = 6;
  const int fd = c.create_dataset("data", nslots * rlen);
  fill_dataset(c, fd, nslots * rlen);

  fault::FaultPlan plan;
  plan.imd_crash(400_ms, 1);  // one copy owner dies and stays dead
  fault::FaultInjector inj(c, plan);
  inj.arm();

  bool mismatch = false;
  int reads_done = 0;
  c.run_app([&](Cluster& cl) -> Co<void> {
    auto* client = cl.dodo();
    std::vector<int> rds(nslots, -1);
    std::vector<std::uint8_t> buf(static_cast<std::size_t>(rlen));
    std::vector<std::uint8_t> back(static_cast<std::size_t>(rlen));
    auto slot_pattern = [&](int s) {
      for (std::size_t j = 0; j < buf.size(); ++j) {
        buf[j] = static_cast<std::uint8_t>((s * 61 + j * 13 + 5) & 0xff);
      }
    };
    for (int sweep = 0; sweep < 60 && (sweep < 8 || !inj.done()); ++sweep) {
      for (int s = 0; s < nslots; ++s) {
        auto& rd = rds[static_cast<std::size_t>(s)];
        if (rd >= 0 && !client->active(rd)) rd = -1;
        if (rd < 0) {
          rd = co_await client->mopen(rlen, fd,
                                      static_cast<Bytes64>(s) * rlen);
          if (rd < 0) {
            co_await cl.sim().sleep(20_ms);
            continue;
          }
          slot_pattern(s);
          if (co_await client->mwrite(rd, 0, buf.data(), rlen) != rlen ||
              !client->active(rd)) {
            continue;
          }
        }
        slot_pattern(s);
        const auto rr = co_await client->mread_ex(rd, 0, back.data(), rlen);
        if (rr.n != rlen) continue;
        ++reads_done;
        if (back != buf) mismatch = true;
        // With a live sibling for every copy, nothing may fall to disk.
        EXPECT_TRUE(rr.disk_ranges.empty())
            << "slot " << s << " read from disk despite a live replica";
        co_await cl.sim().sleep(5_ms);
      }
    }
    co_await cl.sim().sleep(seconds(2.5));
    for (int s = 0; s < nslots; ++s) {
      if (rds[static_cast<std::size_t>(s)] >= 0) {
        (void)co_await client->mclose(rds[static_cast<std::size_t>(s)]);
      }
    }
    co_await cl.sim().sleep(seconds(2.5));
  }, 3600_s);

  EXPECT_FALSE(mismatch) << "failover read diverged from write-through image";
  EXPECT_GT(reads_done, 20);
  expect_all_faults_fired(inj, plan);

  const obs::MetricsSnapshot s = c.metrics_snapshot();
  // Every region really carried a second copy, the dead copy really was
  // selected at least once, and the sibling absorbed every such read.
  EXPECT_GT(s.counter_value("cmd.replicas_placed"), 0u);
  EXPECT_GT(s.counter_value("client.replica_failovers"), 0u);
  EXPECT_EQ(s.counter_value("client.disk_fallbacks"), 0u);
  EXPECT_EQ(s.counter_value("client.mreads_degraded"), 0u);
  expect_mread_conservation(s);
  EXPECT_EQ(fault::leak_report(c), "");
}

TEST(Chaos, AllReplicasLostDegradesToDisk) {
  // The replica set is not a durability promise: when every copy owner is
  // dead, reads must degrade to the backing file — byte-exact, because
  // write-through made disk authoritative before the crash.
  ClusterConfig cfg = chaos_config(36);
  cfg.imd_hosts = 2;  // rc=2 => every region's copies live on both hosts
  cfg.cmd.replica_count = 2;
  cfg.client.refraction = millis(100);
  Cluster c(cfg);
  const Bytes64 rlen = 64_KiB;
  const int nslots = 4;
  const int fd = c.create_dataset("data", nslots * rlen);
  fill_dataset(c, fd, nslots * rlen);

  fault::FaultPlan plan;
  plan.imd_crash(400_ms, 0).imd_crash(450_ms, 1);  // the whole harvest dies
  fault::FaultInjector inj(c, plan);
  inj.arm();

  bool mismatch = false;
  int reads_done = 0;
  c.run_app([&](Cluster& cl) -> Co<void> {
    auto* client = cl.dodo();
    std::vector<int> rds(nslots, -1);
    std::vector<std::uint8_t> buf(static_cast<std::size_t>(rlen));
    std::vector<std::uint8_t> back(static_cast<std::size_t>(rlen));
    auto slot_pattern = [&](int s) {
      for (std::size_t j = 0; j < buf.size(); ++j) {
        buf[j] = static_cast<std::uint8_t>((s * 67 + j * 13 + 3) & 0xff);
      }
    };
    for (int sweep = 0; sweep < 20 && (sweep < 6 || !inj.done()); ++sweep) {
      for (int s = 0; s < nslots; ++s) {
        auto& rd = rds[static_cast<std::size_t>(s)];
        if (rd >= 0 && !client->active(rd)) rd = -1;
        if (rd < 0) {
          rd = co_await client->mopen(rlen, fd,
                                      static_cast<Bytes64>(s) * rlen);
          if (rd < 0) {
            co_await cl.sim().sleep(20_ms);
            continue;
          }
          slot_pattern(s);
          if (co_await client->mwrite(rd, 0, buf.data(), rlen) != rlen ||
              !client->active(rd)) {
            continue;
          }
        }
        slot_pattern(s);
        const auto rr = co_await client->mread_ex(rd, 0, back.data(), rlen);
        if (rr.n != rlen) continue;
        ++reads_done;
        if (back != buf) mismatch = true;
        co_await cl.sim().sleep(5_ms);
      }
    }
    co_await cl.sim().sleep(seconds(2.5));
    for (int s = 0; s < nslots; ++s) {
      if (rds[static_cast<std::size_t>(s)] >= 0) {
        (void)co_await client->mclose(rds[static_cast<std::size_t>(s)]);
      }
    }
    co_await cl.sim().sleep(seconds(2.5));
  }, 3600_s);

  EXPECT_FALSE(mismatch) << "degraded read diverged from write-through image";
  EXPECT_GT(reads_done, 0);
  expect_all_faults_fired(inj, plan);

  const obs::MetricsSnapshot s = c.metrics_snapshot();
  EXPECT_GT(s.counter_value("cmd.replicas_placed"), 0u);
  // Both copies of at least one region were tried and lost before the read
  // fell back: the sibling walk precedes disk, it does not replace it.
  EXPECT_GT(s.counter_value("client.disk_fallbacks"), 0u);
  expect_mread_conservation(s);
  EXPECT_EQ(fault::leak_report(c), "");
}

TEST(Chaos, KitchenSink) {
  // Everything at once: loss bursts, a crash + epoch-bumped restart, a
  // partition, a manager blackout and later a manager restart, and a
  // graceful reclaim — overlapping. The composite must still be
  // indistinguishable, byte for byte, from running on disk alone.
  const Bytes64 dataset = 2_MiB, block = 32_KiB;
  const std::uint64_t baseline = disk_only_digest(dataset, block);

  ClusterConfig cfg = chaos_config(30);
  cfg.client.refraction = millis(400);
  cfg.client.bulk.max_retries = 50;
  Cluster c(cfg);
  fault::FaultPlan plan;
  plan.loss_burst(300_ms, 1_s, 0.15)
      .imd_crash(500_ms, 0)
      .partition(800_ms, 700_ms, c.app_node(), c.host_node(2))
      .cmd_blackout(1800_ms, 600_ms)
      .host_evict(1500_ms, 3)
      .imd_restart(2500_ms, 0)
      .host_recruit(3000_ms, 3)
      .loss_burst(3500_ms, 500_ms, 0.30)
      .cmd_restart(4200_ms);
  fault::FaultInjector inj(c, plan);

  const auto digests = run_scan_under_faults(c, inj, dataset, block, 4, 400);
  expect_digests_match(digests, baseline);
  expect_all_faults_fired(inj, plan);
  EXPECT_GT(c.network().metrics().datagrams_lost, 0u);
  // (Whether the partition window actually intercepts traffic depends on
  // which hosts the client touches while it is up; PartitionAppFromHalfTheHosts
  // asserts datagrams_cut on a schedule guaranteed to carry traffic.)
  const obs::MetricsSnapshot s = c.metrics_snapshot();
  // The 500ms imd crash cut live remote regions: the degradation the
  // matching digests prove is also visible as counted disk fallbacks.
  EXPECT_GT(s.counter_value("client.disk_fallbacks"), 0u);
  expect_mread_conservation(s);
  EXPECT_EQ(fault::leak_report(c), "");
}

TEST(Chaos, CmdShardCrashDegradesOnlyThatShard) {
  // Two directory shards; shard 1's manager node drops off the network with
  // regions open on both shards. The failure domain must be exactly shard
  // 1's control plane: sibling-shard regions keep their directory entries
  // (reused=true on reopen) and their bytes, shard-1 data-plane reads keep
  // working (imds are untouched), but new shard-1 control RPCs time out.
  // A cold restart re-registers the shard's partition under bumped epochs
  // without resurrecting a region freed before the crash, and the whole
  // exercise leaks nothing.
  ClusterConfig cfg = chaos_config(31);
  cfg.cmd_shards = 2;
  cfg.client.refraction = millis(50);  // a dead shard must not idle siblings
  Cluster c(cfg);
  constexpr Bytes64 kRegion = 64_KiB;
  constexpr int kRegions = 16;
  const int fd = c.create_dataset("data", kRegions * kRegion);
  const auto expect = fill_dataset(c, fd, kRegions * kRegion);

  c.run_app([&](Cluster& cl) -> Co<void> {
    auto& d = *cl.dodo();
    const std::uint32_t inode = cl.fs().inode_of(fd);
    const std::uint32_t client = d.client_id();
    auto shard_of = [&](Bytes64 off) {
      return core::shard_of_key(core::RegionKey{inode, off, client}, 2);
    };
    std::vector<std::pair<int, Bytes64>> shard0, shard1;
    for (int i = 0; i < kRegions; ++i) {
      const Bytes64 off = static_cast<Bytes64>(i) * kRegion;
      const int rd = co_await d.mopen(kRegion, fd, off);
      EXPECT_GE(rd, 0);
      if (rd < 0) co_return;
      // Populate the remote copy so post-crash reads exercise remote paths.
      EXPECT_TRUE(
          (co_await d.push_remote(rd, 0, expect.data() + off, kRegion)).ok());
      (shard_of(off) == 0 ? shard0 : shard1).emplace_back(rd, off);
    }
    EXPECT_GE(shard0.size(), 2u);
    EXPECT_GE(shard1.size(), 2u);

    // Free one shard-1 region before the crash: it must stay dead across
    // the shard's cold restart.
    const auto [freed_rd, freed_off] = shard1.back();
    shard1.pop_back();
    EXPECT_EQ(co_await d.mclose(freed_rd), 0);

    cl.crash_cmd_shard(1);

    // Sibling shard untouched: its directory still knows every key
    // (reused=true) and remote bytes come back exact.
    std::vector<std::uint8_t> buf(kRegion);
    for (const auto& [rd, off] : shard0) {
      const auto [rd2, reused] = co_await d.mopen_ex(kRegion, fd, off);
      EXPECT_GE(rd2, 0);
      EXPECT_TRUE(reused) << "shard 0 directory lost a region";
      EXPECT_EQ(co_await d.mread(rd, 0, buf.data(), kRegion), kRegion);
      EXPECT_EQ(std::memcmp(buf.data(), expect.data() + off, kRegion), 0)
          << "shard 0 bytes corrupted by a sibling shard's crash";
      // rd2 stays open: mclose would free the shared region, not just the
      // duplicate descriptor.
    }
    // Shard-1 data plane still serves open descriptors byte-exact...
    for (const auto& [rd, off] : shard1) {
      EXPECT_EQ(co_await d.mread(rd, 0, buf.data(), kRegion), kRegion);
      EXPECT_EQ(std::memcmp(buf.data(), expect.data() + off, kRegion), 0);
    }
    // ...but new shard-1 control RPCs die against the crashed manager.
    const auto [dead_rd, dead_reused] =
        co_await d.mopen_ex(kRegion, fd, freed_off);
    EXPECT_LT(dead_rd, 0) << "mopen to a crashed shard should fail";
    co_await cl.sim().sleep(200 * kMillisecond);  // past refraction

    co_await cl.restart_cmd_shard(1);
    co_await cl.sim().sleep(500 * kMillisecond);  // partition re-registers

    // The freed region must not resurrect from the rebuilt shard: nothing
    // survives in the cold directory or the re-recruited pools.
    const auto [new_rd, resurrected] =
        co_await d.mopen_ex(kRegion, fd, freed_off);
    EXPECT_GE(new_rd, 0);
    EXPECT_FALSE(resurrected) << "freed region resurrected by shard restart";
    // The fresh allocation holds no data either: a filled read here would
    // mean the old region's bytes survived the pool rebuild.
    const auto r = co_await d.mread_ex(new_rd, 0, buf.data(), kRegion);
    EXPECT_EQ(r.n, kRegion);
    EXPECT_FALSE(r.filled) << "freed region's bytes survived the restart";
    co_await cl.sim().sleep(3 * kSecond);  // let keep-alive/scrub settle
  });

  EXPECT_GT(c.cmd(0).region_count(), 0u) << "sibling directory emptied";
  expect_mread_conservation(c.metrics_snapshot());
  EXPECT_EQ(fault::leak_report(c), "");
}

// ---------------------------------------------------------------------------
// Promoted fuzzer finds (DESIGN.md §8). Each schedule below was discovered
// by the randomized simulation fuzzer and minimized by its ddmin shrinker;
// the serialized text is the exact minimal witness. They replay here as
// ordinary deterministic regressions.

namespace {

fuzz::RunResult replay_schedule(const char* text) {
  fuzz::Schedule s;
  std::string err;
  EXPECT_TRUE(fuzz::Schedule::parse(text, s, &err)) << err;
  return fuzz::run_schedule(s);
}

}  // namespace

// Shrunk from `fuzz_repro --seed 5 --buggy-imd-cache --shrink` (73 -> 12
// events): open/close churn overflowing a 4-entry imd reply cache while an
// alloc reply is lost in a burst. Green on the fixed insert-only eviction;
// red if the PR-1 clear-all eviction ever returns.
TEST(FuzzRegression, ReplyCacheChurnDuringLossBurst) {
  static const char* kSchedule =
      "# dodo fuzz schedule v1\n"
      "hosts 1\n"
      "pool 524288\n"
      "region 16384\n"
      "slots 7\n"
      "reply_cache 4\n"
      "seed 5\n"
      "op open 4 6907524653690575263 0\n"
      "op open 2 14783476305918772050 0\n"
      "op push 2 2442479160035398000 0\n"
      "op open 3 13755501340417774410 0\n"
      "op push 3 5603684481489659668 0\n"
      "op open 1 10898729119152301148 0\n"
      "op sleep 3 18235247125683147568 135474436\n"
      "op open 5 7043871933787482882 0\n"
      "fault host-evict 130644511 0 0 0 0.000000\n"
      "fault host-recruit 475672450 0 0 0 0.000000\n"
      "fault loss-burst-begin 644091754 -1 0 0 0.167207\n"
      "fault loss-burst-begin 1102477459 -1 0 0 0.183656\n";
  const auto r = replay_schedule(kSchedule);
  EXPECT_TRUE(r.ok()) << r.violation;
}

// Shrunk from `fuzz_repro --seed 80 --shrink` (106 -> 10 events) — a real
// bug the fuzzer found in the UNMODIFIED code: an alloc RPC timeout made
// the cmd mark the host busy, so the next validate_region dropped the
// directory entries of regions the imd still held, orphaning their pool
// bytes for the rest of the epoch. Fixed by zeroing the size hint instead
// of faking reclamation; this witness keeps it fixed.
TEST(FuzzRegression, CmdAllocTimeoutMustNotInvalidateDirectory) {
  static const char* kSchedule =
      "# dodo fuzz schedule v1\n"
      "hosts 1\n"
      "pool 524288\n"
      "region 16384\n"
      "slots 5\n"
      "reply_cache 6\n"
      "seed 80\n"
      "op sleep 2 9727588479479700280 21062937\n"
      "op open 2 11124886039648158114 0\n"
      "op sleep 4 15895962649591103088 58357667\n"
      "op sleep 1 944674297254817892 94782427\n"
      "op read 2 14659159103012739270 0\n"
      "op open 4 14015526909214979791 0\n"
      "fault loss-burst-begin 219801500 -1 0 0 0.150948\n"
      "fault cmd-blackout-begin 458860125 -1 0 0 0.000000\n"
      "fault cmd-blackout-end 737046992 -1 0 0 0.000000\n"
      "fault cmd-restart 710469779 -1 0 0 0.000000\n";
  const auto r = replay_schedule(kSchedule);
  EXPECT_TRUE(r.ok()) << r.violation;
}

// Full (unshrunk) corpus seeds that historically tripped an oracle, pinned
// by name so a failure names the scenario rather than a bare seed.
TEST(FuzzCorpus, HistoricallyInterestingSeedsStayGreen) {
  for (std::uint64_t seed : {5ULL, 67ULL, 72ULL, 80ULL}) {
    const auto r = fuzz::run_schedule(fuzz::generate_schedule(seed));
    EXPECT_TRUE(r.completed) << "seed " << seed;
    EXPECT_TRUE(r.violation.empty()) << "seed " << seed << ": " << r.violation;
  }
}

}  // namespace
}  // namespace dodo
