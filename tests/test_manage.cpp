// Tests for the region-management library (libmanage): caching states,
// replacement policies, grimReaper migration, write-back, persistence and
// failure degradation.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/units.hpp"
#include "core/cmd.hpp"
#include "core/imd.hpp"
#include "disk/filesystem.hpp"
#include "manage/region_manager.hpp"
#include "runtime/dodo_client.hpp"
#include "sim/simulator.hpp"

namespace dodo::manage {
namespace {

using sim::Co;
using sim::Simulator;

struct Fixture {
  Simulator sim{29};
  net::Network net;
  core::CentralManager cmd;
  disk::SimFilesystem fs;
  std::vector<std::unique_ptr<core::IdleMemoryDaemon>> imds;
  runtime::DodoClient client;
  RegionManager mgr;
  int fd = -1;

  explicit Fixture(ManageParams mp = {}, int hosts = 1,
                   Bytes64 pool = 32_MiB)
      : net(sim, net::NetParams::unet(),
            static_cast<std::size_t>(hosts) + 2),
        cmd(sim, net, 0),
        fs(sim),
        client(sim, net, 1, net::Endpoint{0, core::kCmdPort}, fs, {}),
        mgr(sim, client, fs, mp) {
    cmd.start();
    for (int i = 0; i < hosts; ++i) {
      core::ImdParams p;
      p.pool_bytes = pool;
      imds.push_back(std::make_unique<core::IdleMemoryDaemon>(
          sim, net, static_cast<net::NodeId>(i + 2), 1,
          net::Endpoint{0, core::kCmdPort}, p));
      imds.back()->start();
    }
    fs.create("backing", 32_MiB);
    fd = fs.open("backing", disk::OpenMode::kReadWrite);
    client.start();
  }

  template <typename F>
  void run(F&& body, SimTime limit = 300_s) {
    bool finished = false;
    sim.spawn([](Fixture& f, F fn, bool& done) -> Co<void> {
      co_await f.sim.sleep(5_ms);
      co_await fn(f);
      done = true;
    }(*this, std::forward<F>(body), finished));
    sim.run(limit);
    EXPECT_TRUE(finished) << "test body did not complete";
  }
};

net::Buf pattern(std::size_t n, std::uint8_t salt = 0) {
  net::Buf b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 197 + salt) & 0xff);
  }
  return b;
}

TEST(Manage, CopenValidatesArguments) {
  Fixture fx;
  EXPECT_EQ(fx.mgr.copen(0, fx.fd, 0), -1);
  EXPECT_EQ(fx.mgr.copen(100, fx.fd, -5), -1);
  EXPECT_EQ(fx.mgr.copen(100, 777, 0), -1);
  EXPECT_GE(fx.mgr.copen(100, fx.fd, 0), 0);
}

TEST(Manage, WriteThenReadServedFromLocalCache) {
  Fixture fx;
  fx.run([](Fixture& f) -> Co<void> {
    const int cd = f.mgr.copen(64_KiB, f.fd, 0);
    net::Buf data = pattern(64_KiB, 1);
    EXPECT_EQ(co_await f.mgr.cwrite(cd, 0, data.data(), 64_KiB), 64_KiB);
    net::Buf back(64_KiB, 0);
    EXPECT_EQ(co_await f.mgr.cread(cd, 0, back.data(), 64_KiB), 64_KiB);
    EXPECT_EQ(back, data);
    EXPECT_TRUE(f.mgr.resident(cd));
  });
  EXPECT_GE(fx.mgr.metrics().local_hits, 1u);
}

TEST(Manage, DirtyRegionWrittenToDiskOnEviction) {
  ManageParams mp;
  mp.local_cache_bytes = 128_KiB;  // room for exactly one 128 KiB region
  Fixture fx(mp);
  net::Buf data = pattern(128_KiB, 2);
  fx.run([&data](Fixture& f) -> Co<void> {
    const int a = f.mgr.copen(128_KiB, f.fd, 0);
    const int b = f.mgr.copen(128_KiB, f.fd, 128_KiB);
    EXPECT_EQ(co_await f.mgr.cwrite(a, 0, data.data(), 128_KiB), 128_KiB);
    // Faulting b in evicts a (LRU), forcing a's dirty write-back to disk
    // and a clone into remote memory (Figure 5).
    EXPECT_EQ(co_await f.mgr.cread(b, 0, nullptr, 1024), 1024);
    EXPECT_FALSE(f.mgr.resident(a));
    EXPECT_TRUE(f.mgr.resident(b));
    auto* store = f.fs.store_of_inode(f.fs.inode_of(f.fd));
    net::Buf disk_bytes(128_KiB, 0);
    store->read(0, 128_KiB, disk_bytes.data());
    EXPECT_EQ(disk_bytes, data);
    // a is now remote: reading it again must come back from remote memory
    // with the written content.
    net::Buf back(128_KiB, 0);
    EXPECT_EQ(co_await f.mgr.cread(a, 0, back.data(), 128_KiB), 128_KiB);
    EXPECT_EQ(back, data);
  });
  EXPECT_GE(fx.mgr.metrics().dirty_writebacks, 1u);
  EXPECT_GE(fx.mgr.metrics().clones, 1u);
  EXPECT_GE(fx.mgr.metrics().remote_fills, 1u);
}

TEST(Manage, LruEvictsColdestRegion) {
  ManageParams mp;
  mp.local_cache_bytes = 256_KiB;
  Fixture fx(mp);
  fx.run([](Fixture& f) -> Co<void> {
    const int a = f.mgr.copen(128_KiB, f.fd, 0);
    const int b = f.mgr.copen(128_KiB, f.fd, 128_KiB);
    const int c = f.mgr.copen(128_KiB, f.fd, 256_KiB);
    co_await f.mgr.cread(a, 0, nullptr, 64);
    co_await f.mgr.cread(b, 0, nullptr, 64);
    co_await f.mgr.cread(a, 0, nullptr, 64);  // a is now hotter than b
    co_await f.mgr.cread(c, 0, nullptr, 64);  // must evict b
    EXPECT_TRUE(f.mgr.resident(a));
    EXPECT_FALSE(f.mgr.resident(b));
    EXPECT_TRUE(f.mgr.resident(c));
  });
}

TEST(Manage, MruEvictsHottestRegion) {
  ManageParams mp;
  mp.local_cache_bytes = 256_KiB;
  mp.policy = Policy::kMru;
  Fixture fx(mp);
  fx.run([](Fixture& f) -> Co<void> {
    const int a = f.mgr.copen(128_KiB, f.fd, 0);
    const int b = f.mgr.copen(128_KiB, f.fd, 128_KiB);
    const int c = f.mgr.copen(128_KiB, f.fd, 256_KiB);
    co_await f.mgr.cread(a, 0, nullptr, 64);
    co_await f.mgr.cread(b, 0, nullptr, 64);  // b most recently used
    co_await f.mgr.cread(c, 0, nullptr, 64);  // must evict b (MRU)
    EXPECT_TRUE(f.mgr.resident(a));
    EXPECT_FALSE(f.mgr.resident(b));
    EXPECT_TRUE(f.mgr.resident(c));
  });
}

TEST(Manage, FirstInKeepsResidentsAndMigratesOverflowToRemote) {
  ManageParams mp;
  mp.local_cache_bytes = 256_KiB;
  mp.policy = Policy::kFirstIn;
  Fixture fx(mp);
  fx.run([](Fixture& f) -> Co<void> {
    const int a = f.mgr.copen(128_KiB, f.fd, 0);
    const int b = f.mgr.copen(128_KiB, f.fd, 128_KiB);
    const int c = f.mgr.copen(128_KiB, f.fd, 256_KiB);
    co_await f.mgr.cread(a, 0, nullptr, 128_KiB);
    co_await f.mgr.cread(b, 0, nullptr, 128_KiB);
    // Cache full; c must NOT displace a or b ("once a region is cached, it
    // is not replaced") — it flows to the remote tier instead.
    co_await f.mgr.cread(c, 0, nullptr, 128_KiB);
    EXPECT_TRUE(f.mgr.resident(a));
    EXPECT_TRUE(f.mgr.resident(b));
    EXPECT_FALSE(f.mgr.resident(c));
    EXPECT_TRUE(f.mgr.has_remote(c));
    // Second scan: c now served from remote memory, not disk.
    const auto disk_bytes = f.mgr.metrics().bytes_from_disk;
    co_await f.mgr.cread(c, 0, nullptr, 128_KiB);
    EXPECT_EQ(f.mgr.metrics().bytes_from_disk, disk_bytes);
  });
  EXPECT_GE(fx.mgr.metrics().remote_passthrough, 1u);
}

// ---------------------------------------------------------------------------
// grimReaper policy accounting: one identical access sequence per policy,
// with per-policy hit/miss counters asserted against hand-computed values
// and mid-sequence residency checks pinning exactly which victim the reaper
// chose at each eviction. Cache holds 2 x 128 KiB regions.
//
// Sequence: read a, b, a, c, a, b, c.

TEST(Manage, LruAccountsHitsAndVictimOrder) {
  ManageParams mp;
  mp.local_cache_bytes = 256_KiB;
  mp.policy = Policy::kLru;
  Fixture fx(mp);
  fx.run([](Fixture& f) -> Co<void> {
    const int a = f.mgr.copen(128_KiB, f.fd, 0);
    const int b = f.mgr.copen(128_KiB, f.fd, 128_KiB);
    const int c = f.mgr.copen(128_KiB, f.fd, 256_KiB);
    co_await f.mgr.cread(a, 0, nullptr, 64);  // miss -> {a}
    co_await f.mgr.cread(b, 0, nullptr, 64);  // miss -> {a,b}
    co_await f.mgr.cread(a, 0, nullptr, 64);  // hit
    co_await f.mgr.cread(c, 0, nullptr, 64);  // miss, victim = b (coldest)
    EXPECT_TRUE(f.mgr.resident(a));
    EXPECT_FALSE(f.mgr.resident(b));
    co_await f.mgr.cread(a, 0, nullptr, 64);  // hit
    co_await f.mgr.cread(b, 0, nullptr, 64);  // miss, victim = c
    EXPECT_FALSE(f.mgr.resident(c));
    co_await f.mgr.cread(c, 0, nullptr, 64);  // miss, victim = a (coldest)
    EXPECT_FALSE(f.mgr.resident(a));
    EXPECT_TRUE(f.mgr.resident(b));
    EXPECT_TRUE(f.mgr.resident(c));
  });
  EXPECT_EQ(fx.mgr.policy_hits(Policy::kLru), 2u);
  EXPECT_EQ(fx.mgr.policy_misses(Policy::kLru), 5u);
  // Only the active policy's bucket ever ticks.
  EXPECT_EQ(fx.mgr.policy_hits(Policy::kMru), 0u);
  EXPECT_EQ(fx.mgr.policy_misses(Policy::kMru), 0u);
  EXPECT_EQ(fx.mgr.policy_hits(Policy::kFirstIn), 0u);
  EXPECT_EQ(fx.mgr.policy_misses(Policy::kFirstIn), 0u);
  // Three misses-with-full-cache, one 128 KiB victim each.
  EXPECT_EQ(fx.mgr.metrics().reaper_victims, 3u);
  const auto s = fx.mgr.metrics_snapshot();
  EXPECT_EQ(s.counter_value("manage.policy.lru.hits"), 2u);
  EXPECT_EQ(s.counter_value("manage.policy.lru.misses"), 5u);
}

TEST(Manage, MruAccountsHitsAndVictimOrder) {
  ManageParams mp;
  mp.local_cache_bytes = 256_KiB;
  mp.policy = Policy::kMru;
  Fixture fx(mp);
  fx.run([](Fixture& f) -> Co<void> {
    const int a = f.mgr.copen(128_KiB, f.fd, 0);
    const int b = f.mgr.copen(128_KiB, f.fd, 128_KiB);
    const int c = f.mgr.copen(128_KiB, f.fd, 256_KiB);
    co_await f.mgr.cread(a, 0, nullptr, 64);  // miss -> {a}
    co_await f.mgr.cread(b, 0, nullptr, 64);  // miss -> {a,b}
    co_await f.mgr.cread(a, 0, nullptr, 64);  // hit; a is now hottest
    co_await f.mgr.cread(c, 0, nullptr, 64);  // miss, victim = a (hottest)
    EXPECT_FALSE(f.mgr.resident(a));          // opposite of the LRU run
    EXPECT_TRUE(f.mgr.resident(b));
    co_await f.mgr.cread(a, 0, nullptr, 64);  // miss, victim = c
    EXPECT_FALSE(f.mgr.resident(c));
    co_await f.mgr.cread(b, 0, nullptr, 64);  // hit
    co_await f.mgr.cread(c, 0, nullptr, 64);  // miss, victim = b (hottest)
    EXPECT_FALSE(f.mgr.resident(b));
    EXPECT_TRUE(f.mgr.resident(a));
    EXPECT_TRUE(f.mgr.resident(c));
  });
  EXPECT_EQ(fx.mgr.policy_hits(Policy::kMru), 2u);
  EXPECT_EQ(fx.mgr.policy_misses(Policy::kMru), 5u);
  EXPECT_EQ(fx.mgr.policy_hits(Policy::kLru), 0u);
  EXPECT_EQ(fx.mgr.metrics().reaper_victims, 3u);
}

TEST(Manage, FirstInAccountsHitsAndNeverReaps) {
  ManageParams mp;
  mp.local_cache_bytes = 256_KiB;
  mp.policy = Policy::kFirstIn;
  Fixture fx(mp);
  fx.run([](Fixture& f) -> Co<void> {
    const int a = f.mgr.copen(128_KiB, f.fd, 0);
    const int b = f.mgr.copen(128_KiB, f.fd, 128_KiB);
    const int c = f.mgr.copen(128_KiB, f.fd, 256_KiB);
    co_await f.mgr.cread(a, 0, nullptr, 64);  // miss -> {a}
    co_await f.mgr.cread(b, 0, nullptr, 64);  // miss -> {a,b}
    co_await f.mgr.cread(a, 0, nullptr, 64);  // hit
    co_await f.mgr.cread(c, 0, nullptr, 64);  // miss; c flows remote, no evict
    co_await f.mgr.cread(a, 0, nullptr, 64);  // hit (a never displaced)
    co_await f.mgr.cread(b, 0, nullptr, 64);  // hit
    co_await f.mgr.cread(c, 0, nullptr, 64);  // miss (c stays non-resident)
    EXPECT_TRUE(f.mgr.resident(a));
    EXPECT_TRUE(f.mgr.resident(b));
    EXPECT_FALSE(f.mgr.resident(c));
  });
  EXPECT_EQ(fx.mgr.policy_hits(Policy::kFirstIn), 3u);
  EXPECT_EQ(fx.mgr.policy_misses(Policy::kFirstIn), 4u);
  // "Once a region is cached, it is not replaced": the reaper never fires.
  EXPECT_EQ(fx.mgr.metrics().reaper_victims, 0u);
}

TEST(Manage, CsyncPushesToRemoteAndDisk) {
  Fixture fx;
  fx.run([](Fixture& f) -> Co<void> {
    const int cd = f.mgr.copen(64_KiB, f.fd, 0);
    net::Buf data = pattern(64_KiB, 9);
    co_await f.mgr.cwrite(cd, 0, data.data(), 64_KiB);
    EXPECT_FALSE(f.mgr.has_remote(cd) &&
                 false);  // placeholder: remote state checked after csync
    EXPECT_EQ(co_await f.mgr.csync(cd), 0);
    EXPECT_TRUE(f.mgr.has_remote(cd));
    auto* store = f.fs.store_of_inode(f.fs.inode_of(f.fd));
    net::Buf disk_bytes(64_KiB, 0);
    store->read(0, 64_KiB, disk_bytes.data());
    EXPECT_EQ(disk_bytes, data);
  });
  EXPECT_GE(fx.mgr.metrics().clones, 1u);
}

TEST(Manage, CcloseFlushesAndForgets) {
  Fixture fx;
  net::Buf data = pattern(32_KiB, 5);
  fx.run([&data](Fixture& f) -> Co<void> {
    const int cd = f.mgr.copen(32_KiB, f.fd, 64_KiB);
    co_await f.mgr.cwrite(cd, 0, data.data(), 32_KiB);
    EXPECT_EQ(co_await f.mgr.cclose(cd), 0);
    auto* store = f.fs.store_of_inode(f.fs.inode_of(f.fd));
    net::Buf disk_bytes(32_KiB, 0);
    store->read(64_KiB, 32_KiB, disk_bytes.data());
    EXPECT_EQ(disk_bytes, data);
    // Closed descriptor is invalid.
    EXPECT_EQ(co_await f.mgr.cread(cd, 0, nullptr, 16), -1);
    EXPECT_EQ(dodo_errno(), kDodoEINVAL);
  });
  EXPECT_EQ(fx.mgr.resident_bytes(), 0);
}

TEST(Manage, RemoteFailureDegradesToDisk) {
  ManageParams mp;
  mp.local_cache_bytes = 128_KiB;
  Fixture fx(mp);
  net::Buf data = pattern(128_KiB, 6);
  fx.run([&data](Fixture& f) -> Co<void> {
    const int a = f.mgr.copen(128_KiB, f.fd, 0);
    const int b = f.mgr.copen(128_KiB, f.fd, 128_KiB);
    co_await f.mgr.cwrite(a, 0, data.data(), 128_KiB);
    co_await f.mgr.cread(b, 0, nullptr, 64);  // evict + clone a to remote
    EXPECT_TRUE(f.mgr.has_remote(a));
    // The imd host dies. Reading a must fall back to disk and still return
    // the right bytes (they were written back on eviction).
    f.net.set_node_up(2, false);
    net::Buf back(128_KiB, 0);
    EXPECT_EQ(co_await f.mgr.cread(a, 0, back.data(), 128_KiB), 128_KiB);
    EXPECT_EQ(back, data);
  });
  EXPECT_GE(fx.mgr.metrics().disk_fills, 2u);
}

TEST(Manage, PersistentDatasetServedFromRemoteOnSecondRun) {
  ManageParams mp;
  mp.local_cache_bytes = 128_KiB;
  mp.policy = Policy::kFirstIn;
  Fixture fx(mp);
  net::Buf d0 = pattern(128_KiB, 10);
  net::Buf d1 = pattern(128_KiB, 11);
  // Run 1: stream two regions (one cached locally, one migrated to remote),
  // then close keeping remote copies and detach.
  fx.run([&](Fixture& f) -> Co<void> {
    const int a = f.mgr.copen(128_KiB, f.fd, 0);
    const int b = f.mgr.copen(128_KiB, f.fd, 128_KiB);
    co_await f.mgr.cwrite(a, 0, d0.data(), 128_KiB);
    co_await f.mgr.csync(a);
    co_await f.mgr.cwrite(b, 0, d1.data(), 128_KiB);
    co_await f.mgr.csync(b);
    co_await f.mgr.close_all(/*keep_remote=*/true);
    co_await f.client.detach();
  });
  EXPECT_EQ(fx.cmd.region_count(), 2u);

  // Run 2: fresh client + manager, same client id. Reads must be served
  // from remote memory (no disk fills).
  runtime::DodoClient client2(fx.sim, fx.net, 1,
                              net::Endpoint{0, core::kCmdPort}, fx.fs, {});
  client2.start();
  RegionManager mgr2(fx.sim, client2, fx.fs, mp);
  bool finished = false;
  fx.sim.spawn([](Fixture& f, RegionManager& m, net::Buf& e0, net::Buf& e1,
                  bool& done) -> Co<void> {
    const int a = m.copen(128_KiB, f.fd, 0);
    const int b = m.copen(128_KiB, f.fd, 128_KiB);
    net::Buf back(128_KiB, 0);
    EXPECT_EQ(co_await m.cread(a, 0, back.data(), 128_KiB), 128_KiB);
    EXPECT_EQ(back, e0);
    EXPECT_EQ(co_await m.cread(b, 0, back.data(), 128_KiB), 128_KiB);
    EXPECT_EQ(back, e1);
    EXPECT_EQ(m.metrics().disk_fills + m.metrics().disk_passthrough, 0u);
    done = true;
  }(fx, mgr2, d0, d1, finished));
  fx.sim.run(600_s);  // run() limits are absolute; run 1 consumed 300 s
  EXPECT_TRUE(finished);
}

TEST(Manage, RegionLargerThanCacheBypasses) {
  ManageParams mp;
  mp.local_cache_bytes = 64_KiB;
  Fixture fx(mp);
  fx.run([](Fixture& f) -> Co<void> {
    const int cd = f.mgr.copen(256_KiB, f.fd, 0);
    EXPECT_EQ(co_await f.mgr.cread(cd, 1000, nullptr, 500), 500);
    EXPECT_FALSE(f.mgr.resident(cd));
  });
  EXPECT_EQ(fx.mgr.resident_bytes(), 0);
}

}  // namespace
}  // namespace dodo::manage
