// Tests for the Dodo runtime library (libdodo): the paper's §3.2 API
// semantics, write-through, failure handling, refraction, and the
// keep-alive / detach lifecycle — all against real cmd/imd daemons.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/units.hpp"
#include "core/cmd.hpp"
#include "core/imd.hpp"
#include "disk/filesystem.hpp"
#include "runtime/dodo_client.hpp"
#include "sim/simulator.hpp"

namespace dodo::runtime {
namespace {

using sim::Co;
using sim::Simulator;

// Node 0: cmd. Node 1: application. Nodes 2..1+hosts: imds.
struct Fixture {
  Simulator sim{23};
  net::Network net;
  core::CentralManager cmd;
  disk::SimFilesystem fs;
  std::vector<std::unique_ptr<core::IdleMemoryDaemon>> imds;
  DodoClient client;
  int fd = -1;

  explicit Fixture(int hosts = 1, Bytes64 pool = 16_MiB,
                   ClientParams cp = {})
      : net(sim, net::NetParams::unet(),
            static_cast<std::size_t>(hosts) + 2),
        cmd(sim, net, 0),
        fs(sim),
        client(sim, net, 1, net::Endpoint{0, core::kCmdPort}, fs, cp) {
    cmd.start();
    for (int i = 0; i < hosts; ++i) {
      core::ImdParams p;
      p.pool_bytes = pool;
      imds.push_back(std::make_unique<core::IdleMemoryDaemon>(
          sim, net, static_cast<net::NodeId>(i + 2), 1,
          net::Endpoint{0, core::kCmdPort}, p));
      imds.back()->start();
    }
    fs.create("backing", 8_MiB);
    fd = fs.open("backing", disk::OpenMode::kReadWrite);
    client.start();
  }

  template <typename F>
  void run(F&& body, SimTime limit = 60_s) {
    bool finished = false;
    sim.spawn([](Fixture& f, F fn, bool& done) -> Co<void> {
      co_await f.sim.sleep(5_ms);  // let daemons register
      co_await fn(f);
      done = true;
    }(*this, std::forward<F>(body), finished));
    sim.run(limit);
    EXPECT_TRUE(finished) << "test body did not complete";
  }
};

net::Buf pattern(std::size_t n, std::uint8_t salt = 0) {
  net::Buf b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 131 + salt) & 0xff);
  }
  return b;
}

TEST(Runtime, MopenValidatesArguments) {
  Fixture fx;
  fx.run([](Fixture& f) -> Co<void> {
    // len < 1
    EXPECT_EQ(co_await f.client.mopen(0, f.fd, 0), -1);
    EXPECT_EQ(dodo_errno(), kDodoEINVAL);
    // negative offset
    EXPECT_EQ(co_await f.client.mopen(100, f.fd, -1), -1);
    EXPECT_EQ(dodo_errno(), kDodoEINVAL);
    // invalid fd
    EXPECT_EQ(co_await f.client.mopen(100, 999, 0), -1);
    EXPECT_EQ(dodo_errno(), kDodoEINVAL);
    // fd not opened for writing (§3.2: backing file must be writable)
    const int ro = f.fs.open("backing", disk::OpenMode::kRead);
    EXPECT_EQ(co_await f.client.mopen(100, ro, 0), -1);
    EXPECT_EQ(dodo_errno(), kDodoEINVAL);
  });
}

TEST(Runtime, WriteReadRoundTripAndDiskWriteThrough) {
  Fixture fx;
  fx.run([](Fixture& f) -> Co<void> {
    const int rd = co_await f.client.mopen(256_KiB, f.fd, 64_KiB);
    EXPECT_GE(rd, 0);
    net::Buf data = pattern(100000, 7);
    const Bytes64 wrote =
        co_await f.client.mwrite(rd, 500, data.data(), 100000);
    EXPECT_EQ(wrote, 100000);

    // Remote copy readable.
    net::Buf back(100000, 0);
    const Bytes64 got = co_await f.client.mread(rd, 500, back.data(), 100000);
    EXPECT_EQ(got, 100000);
    EXPECT_EQ(back, data);

    // Backing file also updated, at file_offset + region offset.
    auto* store = f.fs.store_of_inode(f.fs.inode_of(f.fd));
    net::Buf disk_bytes(100000, 0);
    store->read(64_KiB + 500, 100000, disk_bytes.data());
    EXPECT_EQ(disk_bytes, data);
  });
  EXPECT_EQ(fx.client.metrics().remote_writes, 1u);
  EXPECT_EQ(fx.client.metrics().remote_reads, 1u);
}

TEST(Runtime, ReadClipsAndValidates) {
  Fixture fx;
  fx.run([](Fixture& f) -> Co<void> {
    const int rd = co_await f.client.mopen(1000, f.fd, 0);
    EXPECT_GE(rd, 0);
    net::Buf buf(2000, 0);
    // Clip at region end.
    EXPECT_EQ(co_await f.client.mread(rd, 900, buf.data(), 500), 100);
    // Offset beyond end: EINVAL.
    EXPECT_EQ(co_await f.client.mread(rd, 1000, buf.data(), 1), -1);
    EXPECT_EQ(dodo_errno(), kDodoEINVAL);
    EXPECT_EQ(co_await f.client.mread(rd, -1, buf.data(), 1), -1);
    EXPECT_EQ(dodo_errno(), kDodoEINVAL);
    // Unknown descriptor: ENOMEM per §3.2.
    EXPECT_EQ(co_await f.client.mread(12345, 0, buf.data(), 1), -1);
    EXPECT_EQ(dodo_errno(), kDodoENOMEM);
  });
}

TEST(Runtime, McloseFreesEverywhere) {
  Fixture fx;
  fx.run([](Fixture& f) -> Co<void> {
    const int rd = co_await f.client.mopen(1_MiB, f.fd, 0);
    EXPECT_GE(rd, 0);
    co_await f.sim.sleep(10_ms);
    EXPECT_EQ(f.cmd.region_count(), 1u);
    EXPECT_EQ(f.imds[0]->region_count(), 1u);
    EXPECT_EQ(co_await f.client.mclose(rd), 0);
    co_await f.sim.sleep(10_ms);
    EXPECT_EQ(f.cmd.region_count(), 0u);
    EXPECT_EQ(f.imds[0]->region_count(), 0u);
    // Double close: EINVAL.
    EXPECT_EQ(co_await f.client.mclose(rd), -1);
    EXPECT_EQ(dodo_errno(), kDodoEINVAL);
  });
}

TEST(Runtime, MsyncFlushesBackingFile) {
  Fixture fx;
  fx.run([](Fixture& f) -> Co<void> {
    const int rd = co_await f.client.mopen(64_KiB, f.fd, 0);
    EXPECT_GE(rd, 0);
    net::Buf data = pattern(64_KiB);
    co_await f.client.mwrite(rd, 0, data.data(), 64_KiB);
    const auto writes_before = f.fs.disk().metrics().writes;
    EXPECT_EQ(co_await f.client.msync(rd), 0);
    EXPECT_GT(f.fs.disk().metrics().writes, writes_before);
  });
}

TEST(Runtime, AllocationFailureTriggersRefraction) {
  Fixture fx(1, 1_MiB);  // tiny pool
  fx.run([](Fixture& f) -> Co<void> {
    EXPECT_EQ(co_await f.client.mopen(4_MiB, f.fd, 0), -1);
    EXPECT_EQ(dodo_errno(), kDodoENOMEM);
    const auto cmd_mopens = f.cmd.metrics().mopens;
    // Within the refraction period the library fails fast, no RPC.
    EXPECT_EQ(co_await f.client.mopen(4_MiB, f.fd, 0), -1);
    EXPECT_EQ(dodo_errno(), kDodoENOMEM);
    EXPECT_EQ(f.cmd.metrics().mopens, cmd_mopens);
    EXPECT_EQ(f.client.metrics().refraction_skips, 1u);
    // After the refraction period the library asks again.
    co_await f.sim.sleep(6_s);
    EXPECT_EQ(co_await f.client.mopen(4_MiB, f.fd, 0), -1);
    EXPECT_EQ(f.cmd.metrics().mopens, cmd_mopens + 1);
  }, 120_s);
}

TEST(Runtime, HostFailureDropsAllDescriptorsOnThatNode) {
  Fixture fx(1);
  fx.run([](Fixture& f) -> Co<void> {
    const int r1 = co_await f.client.mopen(64_KiB, f.fd, 0);
    const int r2 = co_await f.client.mopen(64_KiB, f.fd, 128_KiB);
    EXPECT_GE(r1, 0);
    EXPECT_GE(r2, 0);
    // The only imd host dies. The read still succeeds — the lost fragment
    // is refetched from the backing file (failure degrades to disk) — but
    // the host and every descriptor on it are dropped.
    f.net.set_node_up(2, false);
    net::Buf buf(16, 0);
    const auto rr = co_await f.client.mread_ex(r1, 0, buf.data(), 16);
    EXPECT_EQ(rr.n, 16);
    EXPECT_EQ(rr.disk_ranges.size(), 1u);
    if (!rr.disk_ranges.empty()) {
      EXPECT_EQ(rr.disk_ranges[0].first, 0);
      EXPECT_EQ(rr.disk_ranges[0].second, 16);
    }
    EXPECT_FALSE(f.client.active(r1));
    // §3.1: *all* descriptors on that node are dropped, so r2 fails
    // immediately without touching the network.
    EXPECT_FALSE(f.client.active(r2));
    EXPECT_EQ(co_await f.client.mread(r2, 0, buf.data(), 16), -1);
    EXPECT_EQ(dodo_errno(), kDodoENOMEM);
  }, 120_s);
  EXPECT_EQ(fx.client.metrics().nodes_dropped, 1u);
  EXPECT_EQ(fx.client.metrics().descriptors_dropped, 2u);
  // One degraded read per dropped-descriptor access plus the lost-fragment
  // refetch, each with a fragment-granular disk fallback tick.
  EXPECT_EQ(fx.client.metrics().mreads_degraded, 2u);
  EXPECT_EQ(fx.client.metrics().disk_fallbacks, 2u);
  EXPECT_EQ(fx.client.metrics().remote_hits, 0u);
}

TEST(Runtime, ConcurrentWriteDuringFailingReadIsSafe) {
  // Regression for a use-after-suspension: mread_ex held an Entry* across
  // its network waits. A concurrent mwrite on the same descriptor whose
  // remote half fails erases that entry mid-read (drop_node), so the read's
  // disk fallback dereferenced freed memory for fd/file_offset. The fixed
  // path copies the fields by value before the first suspension.
  Fixture fx(1);
  fx.run([](Fixture& f) -> Co<void> {
    const int rd = co_await f.client.mopen(64_KiB, f.fd, 0);
    EXPECT_GE(rd, 0);
    net::Buf data = pattern(64_KiB, 9);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), 64_KiB), 64_KiB);
    // Kill the imd host: both the read and the write below will lose their
    // remote halves and race to drop the descriptor.
    f.net.set_node_up(2, false);

    sim::WaitGroup wg(f.sim);
    wg.add(2);
    Bytes64 read_n = -2;
    net::Buf back(64_KiB, 0);
    f.sim.spawn([](Fixture& f2, int r, std::uint8_t* out, Bytes64& n,
                   sim::WaitGroup& g) -> Co<void> {
      n = co_await f2.client.mread(r, 0, out, 64_KiB);
      g.done();
    }(f, rd, back.data(), read_n, wg));
    Bytes64 write_n = -2;
    net::Buf more = pattern(4_KiB, 3);
    f.sim.spawn([](Fixture& f2, int r, const std::uint8_t* b, Bytes64& n,
                   sim::WaitGroup& g) -> Co<void> {
      // Non-overlapping range so the read's disk refetch has one answer.
      n = co_await f2.client.mwrite(r, 32_KiB, b, 4_KiB);
      g.done();
    }(f, rd, more.data(), write_n, wg));
    co_await wg.wait();

    // Both calls degraded to disk and succeeded; the descriptor is gone.
    EXPECT_EQ(read_n, 64_KiB);
    EXPECT_EQ(write_n, 4_KiB);
    EXPECT_FALSE(f.client.active(rd));
    // The refetched prefix is the write-through image from before the cut.
    std::size_t diverged = 0;
    for (std::size_t i = 0; i < 4_KiB; ++i) {
      if (back[i] != data[i] && diverged == 0) diverged = i + 1;
    }
    EXPECT_EQ(diverged, 0u) << "disk refetch diverged at byte "
                            << diverged - 1;
  }, 120_s);
  EXPECT_EQ(fx.client.metrics().mwrite_remote_failures, 1u);
  EXPECT_EQ(fx.client.metrics().mreads_degraded, 1u);
}

TEST(Runtime, MwriteRemoteFailureDegradesToDiskAndDropsDescriptor) {
  // The remote half of an mwrite failing must not fail the call: disk took
  // the bytes, so the write succeeded in degraded mode. The stale remote
  // copy must never serve a later read, so the descriptor is dropped.
  Fixture fx(1);
  fx.run([](Fixture& f) -> Co<void> {
    const int rd = co_await f.client.mopen(64_KiB, f.fd, 0);
    EXPECT_GE(rd, 0);
    f.net.set_node_up(2, false);
    net::Buf data = pattern(32_KiB, 5);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), 32_KiB), 32_KiB);
    EXPECT_FALSE(f.client.active(rd));
    // Disk got the bytes even though the remote half died.
    auto* store = f.fs.store_of_inode(f.fs.inode_of(f.fd));
    net::Buf disk_bytes(32_KiB, 0);
    store->read(0, 32_KiB, disk_bytes.data());
    EXPECT_EQ(disk_bytes, data);
    // A later write on the dropped descriptor fails fast with ENOMEM.
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), 1), -1);
    EXPECT_EQ(dodo_errno(), kDodoENOMEM);
  }, 120_s);
  EXPECT_EQ(fx.client.metrics().mwrite_remote_failures, 1u);
  EXPECT_EQ(fx.client.metrics().descriptors_dropped, 1u);
  EXPECT_EQ(fx.client.metrics().remote_writes, 0u);
}

TEST(Runtime, McloseKeepsDescriptorUntilFreeResolves) {
  // An mclose whose kMfreeRep never arrives must not forget the key: the
  // directory entry would be stuck until the keep-alive sweep and the
  // caller would have no handle left to retry with. The descriptor stays
  // (deactivated) until a reply resolves the free.
  ClientParams cp;
  cp.cmd_rpc.retries = 2;  // fail fast while the cmd is unreachable
  Fixture fx(1, 16_MiB, cp);
  fx.run([](Fixture& f) -> Co<void> {
    const int rd = co_await f.client.mopen(64_KiB, f.fd, 0);
    EXPECT_GE(rd, 0);
    co_await f.sim.sleep(10_ms);
    EXPECT_EQ(f.cmd.region_count(), 1u);

    f.net.set_node_up(0, false);  // cmd vanishes; the free cannot land
    EXPECT_EQ(co_await f.client.mclose(rd), -1);
    EXPECT_EQ(dodo_errno(), kDodoEINVAL);
    EXPECT_TRUE(f.client.known(rd));    // kept for retry...
    EXPECT_FALSE(f.client.active(rd));  // ...but no longer readable
    net::Buf buf(16, 0);
    EXPECT_EQ(co_await f.client.mread(rd, 0, buf.data(), 16), -1);
    EXPECT_EQ(dodo_errno(), kDodoENOMEM);
    EXPECT_EQ(f.cmd.region_count(), 1u);  // free never reached the cmd

    f.net.set_node_up(0, true);  // heal and retry: now the free resolves
    EXPECT_EQ(co_await f.client.mclose(rd), 0);
    EXPECT_FALSE(f.client.known(rd));
    co_await f.sim.sleep(10_ms);
    EXPECT_EQ(f.cmd.region_count(), 0u);
    EXPECT_EQ(f.imds[0]->region_count(), 0u);
  }, 240_s);
}

TEST(Runtime, ZeroLengthAndExactEndAccesses) {
  Fixture fx(1);
  fx.run([](Fixture& f) -> Co<void> {
    const Bytes64 rlen = 64_KiB;
    const int rd = co_await f.client.mopen(rlen, f.fd, 0);
    EXPECT_GE(rd, 0);
    net::Buf data = pattern(static_cast<std::size_t>(rlen), 2);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), rlen), rlen);

    // Zero-length accesses are satisfied locally: no socket, no remote hit,
    // no entry in the mread conservation triple.
    const auto before = f.client.metrics();
    const auto sent_before = f.net.metrics().datagrams_sent;
    net::Buf back(static_cast<std::size_t>(rlen), 0);
    EXPECT_EQ(co_await f.client.mread(rd, 0, back.data(), 0), 0);
    EXPECT_EQ(co_await f.client.mread(rd, rlen - 1, back.data(), 0), 0);
    EXPECT_EQ(co_await f.client.mwrite(rd, 0, data.data(), 0), 0);
    const Status st = co_await f.client.push_remote(rd, 0, data.data(), 0);
    EXPECT_TRUE(st.is_ok());
    EXPECT_EQ(f.net.metrics().datagrams_sent, sent_before);
    EXPECT_EQ(f.client.metrics().mreads_total, before.mreads_total);
    EXPECT_EQ(f.client.metrics().remote_hits, before.remote_hits);
    EXPECT_EQ(f.client.metrics().mwrites_total, before.mwrites_total);

    // Exact-end: the last byte reads back alone, and an over-long read
    // starting there clips to one byte.
    EXPECT_EQ(co_await f.client.mread(rd, rlen - 1, back.data(), 1), 1);
    EXPECT_EQ(back[0], data[static_cast<std::size_t>(rlen) - 1]);
    EXPECT_EQ(co_await f.client.mread(rd, rlen - 1, back.data(), 100), 1);
    // A full-region read ending exactly at the boundary stays remote.
    EXPECT_EQ(co_await f.client.mread(rd, 0, back.data(), rlen), rlen);
    EXPECT_EQ(back, data);
    // Writes at the boundary clip the same way.
    EXPECT_EQ(co_await f.client.mwrite(rd, rlen - 1, data.data(), 100), 1);
    // Offset == len is past the end even for zero-length accesses.
    EXPECT_EQ(co_await f.client.mread(rd, rlen, back.data(), 0), -1);
    EXPECT_EQ(dodo_errno(), kDodoEINVAL);
  }, 120_s);
  EXPECT_EQ(fx.client.metrics().disk_fallbacks, 0u);
  EXPECT_EQ(fx.client.metrics().mreads_degraded, 0u);
}

TEST(Runtime, CrashedClientIsReclaimedDetachedClientIsNot) {
  // Client A writes a region and detaches: the region must survive.
  {
    Fixture fx;
    fx.run([](Fixture& f) -> Co<void> {
      const int rd = co_await f.client.mopen(64_KiB, f.fd, 0);
      EXPECT_GE(rd, 0);
      co_await f.client.detach();
    });
    fx.sim.run(60_s);  // many keep-alive rounds
    EXPECT_EQ(fx.cmd.region_count(), 1u);
    EXPECT_EQ(fx.cmd.metrics().clients_reclaimed, 0u);
  }
  // Client B halts without detaching (crash): keep-alive reclaims.
  {
    Fixture fx;
    fx.run([](Fixture& f) -> Co<void> {
      const int rd = co_await f.client.mopen(64_KiB, f.fd, 0);
      EXPECT_GE(rd, 0);
      co_await f.client.halt();
    });
    fx.sim.run(120_s);
    EXPECT_EQ(fx.cmd.region_count(), 0u);
    EXPECT_GE(fx.cmd.metrics().clients_reclaimed, 1u);
    EXPECT_EQ(fx.imds[0]->region_count(), 0u);
  }
}

TEST(Runtime, PersistentRegionSurvivesAcrossRuns) {
  Fixture fx;
  net::Buf data = pattern(32_KiB, 3);
  // Run 1: write, detach (dmine mode).
  fx.run([&data](Fixture& f) -> Co<void> {
    const int rd = co_await f.client.mopen(32_KiB, f.fd, 0);
    EXPECT_GE(rd, 0);
    co_await f.client.mwrite(rd, 0, data.data(), 32_KiB);
    co_await f.client.detach();
  });
  // Run 2: a fresh client instance with the same client id re-attaches and
  // reads the cached data back from remote memory.
  DodoClient second(fx.sim, fx.net, 1, net::Endpoint{0, core::kCmdPort},
                    fx.fs, ClientParams{});
  second.start();
  bool finished = false;
  fx.sim.spawn([](Fixture& f, DodoClient& c, net::Buf& expect,
                  bool& done) -> Co<void> {
    auto [rd, reused] = co_await c.mopen_ex(32_KiB, f.fd, 0);
    EXPECT_GE(rd, 0);
    EXPECT_TRUE(reused);
    net::Buf back(32_KiB, 0);
    EXPECT_EQ(co_await c.mread(rd, 0, back.data(), 32_KiB), 32_KiB);
    EXPECT_EQ(back, expect);
    done = true;
  }(fx, second, data, finished));
  fx.sim.run(120_s);
  EXPECT_TRUE(finished);
  EXPECT_EQ(fx.cmd.metrics().mopen_reuses, 1u);
}

TEST(Runtime, SpreadsRegionsAcrossHosts) {
  Fixture fx(4, 2_MiB);
  fx.run([](Fixture& f) -> Co<void> {
    for (int i = 0; i < 6; ++i) {
      const int rd =
          co_await f.client.mopen(1_MiB, f.fd, static_cast<Bytes64>(i) * 1_MiB);
      EXPECT_GE(rd, 0) << "allocation " << i;
    }
  }, 120_s);
  // 6 MiB of regions cannot fit on fewer than 3 of the 2 MiB hosts.
  int hosts_used = 0;
  for (const auto& imd : fx.imds) {
    if (imd->region_count() > 0) ++hosts_used;
  }
  EXPECT_GE(hosts_used, 3);
}

}  // namespace
}  // namespace dodo::runtime
